module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Plan = Moard_campaign.Plan
module Store = Moard_store.Store
module Query = Moard_store.Query
module Key = Moard_store.Key
module Chaos = Moard_chaos.Chaos
module Cancel = Moard_chaos.Cancel
module Monotime = Moard_chaos.Monotime

type config = {
  socket : string;
  store_dir : string;
  workers : int;
  queue : int;
  timeout_s : float;
  lru_entries : int;
  lru_bytes : int;
  batch : bool;
  shims : Chaos.shims;
}

let default_config =
  {
    socket = "moardd.sock";
    store_dir = ".moard-store";
    workers = max 1 (Domain.recommended_domain_count () - 1);
    queue = 64;
    timeout_s = 300.0;
    lru_entries = 256;
    lru_bytes = 64 * 1024 * 1024;
    batch = true;
    shims = Chaos.passthrough;
  }

(* A single-flight entry: the leader computes, followers block on the
   condition until the leader publishes the shared response. *)
type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable waiters : int;
  mutable fresult : (Jsonx.t * string option) option;
}

type t = {
  cfg : config;
  st : Store.t;
  pool : Pool.t;
  listen : Unix.file_descr;
  stop_flag : bool Atomic.t;
  m : Mutex.t;
  conns_done : Condition.t;
  ctxs : (string, Context.t) Hashtbl.t;
  flights : (string, flight) Hashtbl.t;
  warm_q : Jsonx.t Queue.t;
  warm_seen : (string, unit) Hashtbl.t;
  mutable warm_busy : bool;
  mutable warmed : int;
  mutable warm_errors : int;
  mutable coalesced : int;
  mutable conns : int;
  mutable served : int;
  mutable errors : int;
  mutable accept_thread : Thread.t option;
  mutable warm_thread : Thread.t option;
  mutable stopped : bool;
  started_at : float;
}

let stopping t = Atomic.get t.stop_flag
let store t = t.st
let pool t = t.pool

(* One golden run per program, whoever asks first; the lock makes the
   make single-flight (concurrent first requests for the same benchmark
   must not both execute the golden run). *)
let ctx_of t (e : Registry.entry) =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match Hashtbl.find_opt t.ctxs e.Registry.benchmark with
      | Some ctx -> ctx
      | None ->
        let ctx = Context.make (e.Registry.workload ()) in
        Hashtbl.replace t.ctxs e.Registry.benchmark ctx;
        ctx)

(* ---------------- request handling ---------------- *)

(* Two requests are the same work iff their canonical signatures match:
   top-level fields sorted, transport decoration (proto, checksum)
   stripped.  The same string doubles as the integrity-checksum input
   on inter-node hops — field reordering in flight is not corruption. *)
let signature_of req = Jsonx.signature ~drop:[ "proto"; "req_fnv" ] req

(* A proxy stamps "req_fnv" on forwarded requests; a flipped bit in the
   header frame that still parses as JSON would otherwise compute the
   wrong object and break byte-identity silently.  Verified before any
   work, so the typed refusal is always safe to resend. *)
let integrity_error req =
  match Jsonx.str (Jsonx.member "req_fnv" req) with
  | None -> None
  | Some announced ->
    let actual = Protocol.fnv_hex (signature_of req) in
    if String.equal announced actual then None
    else
      Some
        (Protocol.error ~code:"integrity"
           ~message:
             (Printf.sprintf
                "request checksum mismatch (%s announced, %s received): \
                 refused before dispatch"
                announced actual))

exception Bad_request of string

let field_str req name =
  match Jsonx.str (Jsonx.member name req) with
  | Some s -> s
  | None -> raise (Bad_request (Printf.sprintf "missing string field %S" name))

let entry_of req =
  let benchmark = field_str req "benchmark" in
  match Registry.find benchmark with
  | e -> e
  | exception Not_found ->
    raise (Bad_request (Printf.sprintf "unknown benchmark %S" benchmark))

(* An absent "error_model" field means single-bit, so requests predating
   the field keep producing byte-identical keys and payloads. *)
let model_of req =
  match Jsonx.str (Jsonx.member "error_model" req) with
  | None -> Moard_bits.Errmodel.Single_bit
  | Some s -> (
    match Moard_bits.Errmodel.of_string s with
    | Ok m -> m
    | Error msg -> raise (Bad_request msg))

(* [batch] selects the resolution engine, not the analysis: payload bytes
   (and the store key) are the same either way, so it comes from the
   daemon's own configuration, never from the request. *)
let options_of req ~batch =
  let get name d = Option.value ~default:d (Jsonx.int (Jsonx.member name req)) in
  {
    Model.default_options with
    Model.k = get "k" Model.default_options.Model.k;
    Model.fi_budget = get "fi_budget" Model.default_options.Model.fi_budget;
    Model.batch;
    Model.model = model_of req;
  }

let objects_of req (e : Registry.entry) =
  match Jsonx.list (Jsonx.member "objects" req) with
  | None | Some [] -> e.Registry.objects
  | Some xs ->
    List.map
      (function
        | Jsonx.Str s -> s
        | _ -> raise (Bad_request "objects must be an array of strings"))
      xs

let plan_of req ctx (e : Registry.entry) =
  let geti name d = Option.value ~default:d (Jsonx.int (Jsonx.member name req)) in
  let getf name d =
    Option.value ~default:d (Jsonx.float (Jsonx.member name req))
  in
  Plan.make ~model:(model_of req) ~seed:(geti "seed" 42)
    ~confidence:(getf "confidence" 0.95)
    ~ci_width:(getf "ci_width" 0.02) ~batch:(geti "batch" 64)
    ~max_samples:(geti "max_samples" (-1))
    ctx ~objects:(objects_of req e)

let serve_result ~op ~key ~status extra payload =
  ( Protocol.ok
      ([
         ("op", Jsonx.Str op);
         ("key", Jsonx.Str (Key.to_hex key));
         ("served", Jsonx.Str (Query.status_name status));
         ("cached", Jsonx.Bool (Query.is_hit status));
       ]
      @ extra),
    Some payload )

(* The three compute ops. Each returns (header, payload option).
   [cancel] trips when the awaiting connection gives up on us: compute
   paths poll it per site / per batch and abandon the work. *)
let compute t ~cancel req op =
  match op with
  | "advf" ->
    let e = entry_of req in
    let object_name = field_str req "object" in
    let options = options_of req ~batch:t.cfg.batch in
    let program = (e.Registry.workload ()).Moard_inject.Workload.program in
    let key = Key.advf ~program ~object_name ~options in
    let payload, status =
      Query.advf t.st ~options ~cancel
        ~ctx:(fun () -> ctx_of t e)
        ~program ~object_name ()
    in
    serve_result ~op ~key ~status
      [
        ("benchmark", Jsonx.Str e.Registry.benchmark);
        ("object", Jsonx.Str object_name);
      ]
      payload
  | "campaign" | "report" ->
    let e = entry_of req in
    let program = (e.Registry.workload ()).Moard_inject.Workload.program in
    (* the plan needs the fault-site population, hence the golden run *)
    let ctx = ctx_of t e in
    let plan = plan_of req ctx e in
    let key = Key.campaign ~program ~plan in
    let extra = [ ("benchmark", Jsonx.Str e.Registry.benchmark) ] in
    if op = "campaign" then begin
      let domains =
        Option.value ~default:1 (Jsonx.int (Jsonx.member "domains" req))
      in
      let payload, status, result =
        Query.campaign t.st ~domains ~batch:t.cfg.batch
          ~should_stop:(fun () -> Atomic.get t.stop_flag)
          ~cancel ~fx:t.cfg.shims.Chaos.journal_fx
          ~journal_meta:[ ("benchmark", e.Registry.benchmark) ]
          ~ctx:(fun () -> ctx)
          ~program ~plan ()
      in
      let complete =
        match result with
        | None -> true
        | Some r ->
          not
            (Array.exists
               (fun (o : Moard_campaign.Engine.object_result) ->
                 o.Moard_campaign.Engine.stopped
                 = Moard_campaign.Engine.Interrupted)
               r.Moard_campaign.Engine.objects)
      in
      serve_result ~op ~key ~status
        (extra @ [ ("complete", Jsonx.Bool complete) ])
        payload
    end
    else begin
      (* report: read-only — the store, else the journal, else not-found *)
      match Store.get t.st ~key ~kind:Moard_store.Record.Campaign with
      | Some (payload, where) ->
        let status =
          match where with
          | Store.Memory -> Query.Memory_hit
          | Store.Disk -> Query.Disk_hit
        in
        serve_result ~op ~key ~status
          (extra @ [ ("complete", Jsonx.Bool true) ])
          payload
      | None ->
        let journal =
          Filename.concat (Store.journal_dir t.st)
            (Key.to_hex key ^ ".journal")
        in
        if not (Sys.file_exists journal) then
          ( Protocol.error ~code:"not-found"
              ~message:
                "no stored report and no journal for this campaign key",
            None )
        else
          let r =
            Moard_campaign.Engine.resume ~max_batches:0
              ~fx:t.cfg.shims.Chaos.journal_fx ~journal ctx plan
          in
          let payload = Query.campaign_payload r in
          serve_result ~op ~key ~status:Query.Computed
            (extra @ [ ("complete", Jsonx.Bool false) ])
            payload
    end
  | "predict" ->
    let e = entry_of req in
    let object_name = field_str req "object" in
    let geti name d =
      Option.value ~default:d (Jsonx.int (Jsonx.member name req))
    in
    let getf name d =
      Option.value ~default:d (Jsonx.float (Jsonx.member name req))
    in
    let sizes =
      match Jsonx.list (Jsonx.member "sizes" req) with
      | None | Some [] -> Registry.training_sizes e
      | Some xs ->
        List.map
          (function
            | Jsonx.Int n -> n
            | _ -> raise (Bad_request "sizes must be an array of integers"))
          xs
    in
    let target = geti "target" (Registry.holdout_size e) in
    let model = model_of req in
    let seed = geti "seed" 42 in
    let confidence = getf "confidence" 0.95 in
    let ci_width = getf "ci_width" 0.02 in
    let max_samples = geti "max_samples" (-1) in
    let domains = geti "domains" 1 in
    let sizes = Moard_predict.Predict.canonical_sizes sizes in
    (* predictions key on (size, program) pairs, not the daemon's shared
       per-benchmark context (which is pinned to the default size) *)
    let programs =
      List.map
        (fun n ->
          (n, (e.Registry.workload_at n).Moard_inject.Workload.program))
        sizes
    in
    let key =
      Key.predict ~programs ~object_name ~model ~seed ~confidence ~ci_width
        ~max_samples ~target
    in
    let payload, status, _ =
      Query.predict t.st ~model ~seed ~confidence ~ci_width ~max_samples
        ~domains ~batch:t.cfg.batch ~cancel
        ~workload_at:e.Registry.workload_at ~object_name ~sizes ~target ()
    in
    serve_result ~op ~key ~status
      [
        ("benchmark", Jsonx.Str e.Registry.benchmark);
        ("object", Jsonx.Str object_name);
        ("target", Jsonx.Int target);
      ]
      payload
  | "advise" ->
    let e = entry_of req in
    let geti name d =
      Option.value ~default:d (Jsonx.int (Jsonx.member name req))
    in
    let getf name d =
      Option.value ~default:d (Jsonx.float (Jsonx.member name req))
    in
    let model = model_of req in
    let seed = geti "seed" 42 in
    let confidence = getf "confidence" 0.95 in
    let ci_width = getf "ci_width" 0.02 in
    let max_samples = geti "max_samples" (-1) in
    let domains = geti "domains" 1 in
    let wl = e.Registry.workload () in
    let objects = objects_of req e in
    let key =
      Key.advise ~program:wl.Moard_inject.Workload.program ~objects ~model
        ~seed ~confidence ~ci_width ~max_samples
    in
    let payload, status =
      Query.advise t.st ~model ~seed ~confidence ~ci_width ~max_samples
        ~domains ~batch:t.cfg.batch ~cancel ~workload:wl ~objects ()
    in
    serve_result ~op ~key ~status
      [ ("benchmark", Jsonx.Str e.Registry.benchmark) ]
      payload
  | _ -> (Protocol.error ~code:"bad-request" ~message:("unknown op " ^ op), None)

let stat_response t =
  let s = Store.stat t.st in
  Protocol.ok
    [
      ("op", Jsonx.Str "stat");
      ("server", Jsonx.Str Version.version);
      ("proto", Jsonx.Int Protocol.version);
      ("uptime_s", Jsonx.Float (Monotime.now () -. t.started_at));
      ( "store",
        Jsonx.Obj
          [
            ("dir", Jsonx.Str (Store.dir t.st));
            ("entries", Jsonx.Int s.Store.entries);
            ("disk_bytes", Jsonx.Int s.Store.disk_bytes);
            ("lru_entries", Jsonx.Int s.Store.lru_entries);
            ("lru_bytes", Jsonx.Int s.Store.lru_bytes);
            ("lru_evictions", Jsonx.Int s.Store.lru_evictions);
            ("mem_hits", Jsonx.Int s.Store.mem_hits);
            ("disk_hits", Jsonx.Int s.Store.disk_hits);
            ("misses", Jsonx.Int s.Store.misses);
            ("corrupt", Jsonx.Int s.Store.corrupt);
            ("quarantined", Jsonx.Int s.Store.quarantined);
            ("put_failures", Jsonx.Int s.Store.put_failures);
            ("puts", Jsonx.Int s.Store.puts);
          ] );
      ( "pool",
        Jsonx.Obj
          ([
             ("workers", Jsonx.Int (Pool.workers t.pool));
             ("queued", Jsonx.Int (Pool.queued t.pool));
             ("running", Jsonx.Int (Pool.running t.pool));
             ("executed", Jsonx.Int (Pool.executed t.pool));
             ("rejected", Jsonx.Int (Pool.rejected t.pool));
             ("failed", Jsonx.Int (Pool.failed t.pool));
           ]
          @
          match Pool.last_error t.pool with
          | None -> []
          | Some e -> [ ("last_error", Jsonx.Str e) ]) );
      ("contexts", Jsonx.Int (Hashtbl.length t.ctxs));
      ("golden_executions", Jsonx.Int (Context.golden_executions ()));
      ("served", Jsonx.Int t.served);
      ("errors", Jsonx.Int t.errors);
      ("coalesced", Jsonx.Int t.coalesced);
      ( "warming",
        Jsonx.Obj
          [
            ("queued", Jsonx.Int (Queue.length t.warm_q));
            ("busy", Jsonx.Bool t.warm_busy);
            ("warmed", Jsonx.Int t.warmed);
            ("errors", Jsonx.Int t.warm_errors);
          ] );
    ]

(* ---------------- warming ---------------- *)

(* "warm" acknowledges immediately and queues an advf precompute; the
   warm thread drains the queue only while the pool is otherwise idle,
   so warming never competes with a live client request for a worker. *)
let enqueue_warm t req =
  match integrity_error req with
  | Some e -> (e, None)
  | None -> (
    match
      let e = entry_of req in
      let object_name = field_str req "object" in
      (e, object_name)
    with
    | exception Bad_request msg ->
      (Protocol.error ~code:"bad-request" ~message:msg, None)
    | e, object_name ->
      let inner =
        match req with
        | Jsonx.Obj fields ->
          Jsonx.Obj
            (List.filter_map
               (fun (k, v) ->
                 match k with
                 | "proto" | "req_fnv" -> None
                 | "op" -> Some (k, Jsonx.Str "advf")
                 | _ -> Some (k, v))
               fields)
        | _ -> assert false (* entry_of above proved req is an object *)
      in
      let sgn = signature_of inner in
      Mutex.lock t.m;
      let fresh = not (Hashtbl.mem t.warm_seen sgn) in
      if fresh then begin
        Hashtbl.replace t.warm_seen sgn ();
        Queue.push inner t.warm_q
      end;
      Mutex.unlock t.m;
      ( Protocol.ok
          [
            ("op", Jsonx.Str "warm");
            ("benchmark", Jsonx.Str e.Registry.benchmark);
            ("object", Jsonx.Str object_name);
            ("queued", Jsonx.Bool fresh);
          ],
        None ))

(* The awaiting client hung up (clean EOF or a reset): readable socket
   with nothing to peek.  Pipelined bytes (> 0) mean it is still there. *)
let client_gone fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> (
    match Unix.recv fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> true)

(* Run one compute op through the pool. Pooled ops hand a job to a
   worker domain and poll the slot under a monotonic request deadline;
   when it passes — or the requesting connection dies with nobody
   coalesced behind it — the job's cancel token trips and the
   computation abandons the sweep at its next per-site/per-batch check:
   the worker frees instead of running a result nobody is waiting for
   to completion. *)
let run_pooled t ?fd ?deadline_s fl req op =
  let timeout_s = Option.value ~default:t.cfg.timeout_s deadline_s in
  let slot = Atomic.make None in
  let fill r = ignore (Atomic.compare_and_set slot None (Some r)) in
  let cancel = Cancel.create ~deadline_s:timeout_s () in
  let job () =
    let r =
      try compute t ~cancel req op with
      | Bad_request msg ->
        (Protocol.error ~code:"bad-request" ~message:msg, None)
      | Moard_predict.Predict.Refused r ->
        ( Protocol.error ~code:"refused"
            ~message:(Moard_predict.Predict.refusal_message r),
          None )
      | Cancel.Cancelled why ->
        (* nobody is waiting by now; fill the slot anyway so the
           invariant — every accepted job resolves its slot — holds
           unconditionally *)
        ( Protocol.error ~code:"cancelled"
            ~message:("request abandoned: " ^ why),
          None )
      | Invalid_argument msg | Failure msg ->
        (Protocol.error ~code:"internal" ~message:msg, None)
      | e ->
        (Protocol.error ~code:"internal" ~message:(Printexc.to_string e), None)
    in
    fill r
  in
  (* the pool's on_error hook guarantees a typed response even when
     the job dies outside compute's own handlers (e.g. a chaos-
     injected raise in the job shim): the client must never be left
     to wait out the full timeout on a silent failure *)
  let on_error e =
    fill
      ( Protocol.error ~code:"internal"
          ~message:("job failed: " ^ Printexc.to_string e),
        None )
  in
  match Pool.submit ~on_error t.pool job with
  | `Overloaded ->
    ( Protocol.error ~code:"overloaded"
        ~message:
          (Printf.sprintf "queue full (%d pending); retry later" t.cfg.queue),
      None )
  | `Draining ->
    (Protocol.error ~code:"draining" ~message:"daemon is shutting down", None)
  | `Accepted ->
    let deadline = Monotime.now () +. timeout_s in
    let lone () =
      Mutex.lock fl.fm;
      let w = fl.waiters in
      Mutex.unlock fl.fm;
      w = 0
    in
    let rec await n =
      match Atomic.get slot with
      | Some r -> r
      | None ->
        if Monotime.now () > deadline then begin
          Cancel.cancel cancel;
          ( Protocol.error ~code:"timeout"
              ~message:
                (Printf.sprintf
                   "request exceeded %gs (the computation was cancelled; \
                    partial campaign batches remain journalled for resume)"
                   timeout_s),
            None )
        end
        else if
          (* every ~100 ms: a hedged-away or dead client frees its
             worker, unless coalesced followers still want the result *)
          n mod 20 = 0
          && (match fd with Some fd -> client_gone fd | None -> false)
          && lone ()
        then begin
          Cancel.cancel cancel;
          ( Protocol.error ~code:"cancelled"
              ~message:"client went away; computation abandoned",
            None )
        end
        else begin
          Thread.delay 0.005;
          await (n + 1)
        end
    in
    await 1

(* A coalesced follower serves the leader's bytes but says so: the
   response is a hit from the follower's point of view whatever the
   leader had to do to produce it. *)
let coalesced_header = function
  | Jsonx.Obj fields
    when List.assoc_opt "status" fields = Some (Jsonx.Str "ok") ->
    Jsonx.Obj
      (List.map
         (fun (k, v) ->
           match k with
           | "served" -> (k, Jsonx.Str "coalesced")
           | "cached" -> (k, Jsonx.Bool true)
           | _ -> (k, v))
         fields)
  | h -> h

(* Dispatch one request to a response.  Compute ops are single-flight
   on the canonical request signature: concurrent identical requests
   elect one leader, everyone else blocks for the leader's response. *)
let dispatch t ?fd ?deadline_s req =
  match Jsonx.int (Jsonx.member "proto" req) with
  | Some p when p <> Protocol.version ->
    ( Protocol.error ~code:"proto-mismatch"
        ~message:
          (Printf.sprintf "server speaks protocol %d, client sent %d"
             Protocol.version p),
      None )
  | _ -> (
    match Jsonx.str (Jsonx.member "op" req) with
    | None -> (Protocol.error ~code:"bad-request" ~message:"missing op", None)
    | Some "version" ->
      ( Protocol.ok
          [
            ("op", Jsonx.Str "version");
            ("server", Jsonx.Str Version.version);
            ("proto", Jsonx.Int Protocol.version);
          ],
        None )
    | Some "stat" -> (stat_response t, None)
    | Some "warm" -> enqueue_warm t req
    | Some (("advf" | "campaign" | "report" | "predict" | "advise") as op) -> (
      match integrity_error req with
      | Some e -> (e, None)
      | None -> (
        let sgn = signature_of req in
        let role =
          Mutex.lock t.m;
          let r =
            match Hashtbl.find_opt t.flights sgn with
            | Some fl ->
              Mutex.lock fl.fm;
              fl.waiters <- fl.waiters + 1;
              Mutex.unlock fl.fm;
              `Follow fl
            | None ->
              let fl =
                {
                  fm = Mutex.create ();
                  fc = Condition.create ();
                  waiters = 0;
                  fresult = None;
                }
              in
              Hashtbl.replace t.flights sgn fl;
              `Lead fl
          in
          Mutex.unlock t.m;
          r
        in
        match role with
        | `Follow fl ->
          Mutex.lock fl.fm;
          while fl.fresult = None do
            Condition.wait fl.fc fl.fm
          done;
          let header, payload = Option.get fl.fresult in
          Mutex.unlock fl.fm;
          Mutex.lock t.m;
          t.coalesced <- t.coalesced + 1;
          Mutex.unlock t.m;
          (coalesced_header header, payload)
        | `Lead fl ->
          let resolve r =
            Mutex.lock t.m;
            Hashtbl.remove t.flights sgn;
            Mutex.unlock t.m;
            Mutex.lock fl.fm;
            fl.fresult <- Some r;
            Condition.broadcast fl.fc;
            Mutex.unlock fl.fm;
            r
          in
          (* the leader must always publish — a raising leader would
             leave followers blocked forever *)
          (match run_pooled t ?fd ?deadline_s fl req op with
          | r -> resolve r
          | exception e ->
            ignore
              (resolve
                 ( Protocol.error ~code:"internal"
                     ~message:(Printexc.to_string e),
                   None ));
            raise e)))
    | Some op ->
      (Protocol.error ~code:"bad-request" ~message:("unknown op " ^ op), None))

(* ---------------- connection & accept loops ---------------- *)

let bump t ok =
  Mutex.lock t.m;
  if ok then t.served <- t.served + 1 else t.errors <- t.errors + 1;
  Mutex.unlock t.m

let is_ok = function
  | Jsonx.Obj fields -> List.assoc_opt "status" fields = Some (Jsonx.Str "ok")
  | _ -> false

(* Drain the warm queue through the normal dispatch path (so live
   queries for the same key coalesce onto the warm compute), one item
   at a time, only when no client work is queued or running.  Warms run
   deadline-free: the per-request timeout protects a waiting client,
   and a warm has none — expiring it would burn the whole compute and
   silently leave the object cold (the dedup table never requeues). *)
let warm_loop t () =
  while not (stopping t) do
    let item =
      Mutex.lock t.m;
      let it =
        if
          (not (Queue.is_empty t.warm_q))
          && Pool.queued t.pool = 0
          && Pool.running t.pool = 0
        then Some (Queue.pop t.warm_q)
        else None
      in
      (match it with Some _ -> t.warm_busy <- true | None -> ());
      Mutex.unlock t.m;
      it
    in
    match item with
    | None -> Thread.delay 0.02
    | Some req ->
      let header, _ = dispatch t ~deadline_s:Float.infinity req in
      Mutex.lock t.m;
      t.warm_busy <- false;
      if is_ok header then t.warmed <- t.warmed + 1
      else t.warm_errors <- t.warm_errors + 1;
      Mutex.unlock t.m
  done

let handle_conn t fd =
  let sock = t.cfg.shims.Chaos.sock in
  let rec loop () =
    if not (stopping t) then begin
      (* short select ticks keep the drain responsive on idle connections *)
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
        match Protocol.recv ~sock fd with
        | None -> ()
        | Some (req, _payload) ->
          let header, payload = dispatch t ~fd req in
          bump t (is_ok header);
          Protocol.send ~sock fd ?payload header;
          loop ())
    end
  in
  (try loop () with
  | Protocol.Protocol_error msg ->
    (* answer malformed framing if the socket still writes, then drop *)
    (try
       Protocol.send ~sock fd (Protocol.error ~code:"bad-request" ~message:msg)
     with _ -> ());
    bump t false
  | Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.m;
  t.conns <- t.conns - 1;
  Condition.broadcast t.conns_done;
  Mutex.unlock t.m

let accept_loop t () =
  while not (stopping t) do
    match Unix.select [ t.listen ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listen with
      | fd, _ ->
        Mutex.lock t.m;
        t.conns <- t.conns + 1;
        Mutex.unlock t.m;
        ignore (Thread.create (fun () -> handle_conn t fd) ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
  done

let start cfg =
  let cfg = { cfg with workers = max 1 cfg.workers; queue = max 1 cfg.queue } in
  (* a write on a dead client connection must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    Store.open_store ~lru_entries:cfg.lru_entries ~lru_bytes:cfg.lru_bytes
      ~fx:cfg.shims.Chaos.store_fx ~dir:cfg.store_dir ()
  in
  if Sys.file_exists cfg.socket then Unix.unlink cfg.socket;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen 64;
  let t =
    {
      cfg;
      st;
      pool =
        Pool.create ~wrap:cfg.shims.Chaos.wrap_job ~workers:cfg.workers
          ~queue:cfg.queue ();
      listen;
      stop_flag = Atomic.make false;
      m = Mutex.create ();
      conns_done = Condition.create ();
      ctxs = Hashtbl.create 8;
      flights = Hashtbl.create 16;
      warm_q = Queue.create ();
      warm_seen = Hashtbl.create 64;
      warm_busy = false;
      warmed = 0;
      warm_errors = 0;
      coalesced = 0;
      conns = 0;
      served = 0;
      errors = 0;
      accept_thread = None;
      warm_thread = None;
      stopped = false;
      started_at = Monotime.now ();
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.warm_thread <- Some (Thread.create (warm_loop t) ());
  t

let stop t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.m;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.m;
  if first then begin
    Option.iter Thread.join t.accept_thread;
    (* in-flight requests finish (their campaign batches commit to the
       journal via the engine's should_stop hook), then the pool drains *)
    Mutex.lock t.m;
    while t.conns > 0 do
      Condition.wait t.conns_done t.m
    done;
    Mutex.unlock t.m;
    (* the warm thread exits at its next stopping check; an in-flight
       warm campaign stops at a batch boundary via should_stop *)
    Option.iter Thread.join t.warm_thread;
    Pool.drain t.pool;
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    if Sys.file_exists t.cfg.socket then (
      try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ())
  end

let run cfg =
  let t = start cfg in
  let quit _ = Atomic.set t.stop_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  while not (stopping t) do
    Thread.delay 0.2
  done;
  stop t
