(** A minimal JSON codec for the daemon protocol.

    Self-contained (the container has no JSON package) and deliberately
    small: objects, arrays, strings with the standard escapes, ints,
    floats, booleans, null. Printing is canonical — fields in the order
    given, no insignificant whitespace — so protocol messages are stable
    byte strings. This codec frames {e protocol} messages; result
    {e payloads} are produced by the report renderers and pass through the
    daemon opaquely. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** [Error msg] carries a byte offset and a description. Numbers without
    [.], [e] or [E] parse as [Int]; others as [Float]. Rejects trailing
    garbage. *)

(** {2 Accessors} — total, for picking requests apart. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing field. *)

val str : t option -> string option
val int : t option -> int option
(** Accepts an integral [Float] too (a client may send [42.0]). *)

val float : t option -> float option
(** Accepts [Int] too. *)

val bool : t option -> bool option
val list : t option -> t list option

val signature : ?drop:string list -> t -> string
(** Canonical request signature: the [to_string] rendering with
    top-level object fields sorted by name and any [drop]-listed fields
    removed (non-objects render as-is).  Two requests coalesce — and a
    request integrity checksum survives re-serialization — iff their
    signatures are byte-equal, regardless of field order or transport
    decoration like ["proto"]. *)
