(** The chaos campaign: MOARD's fault injector turned on moardd itself.

    Starts an in-process daemon whose store, journal, socket and job
    layers all run through fault-injecting shims drawn from one seeded
    {!Moard_chaos.Chaos} plan, then drives a deterministic sequence of
    requests against it through the retrying client and checks the
    serving invariant:

    {e every response is either a typed protocol error (or a client-side
    transport failure) or byte-identical to the fault-free baseline.}

    Requests are issued sequentially from a single client, so the fault
    schedule — and with it the whole survival report — is a function of
    the seed alone: same seed, same faults, same report. *)

type report = {
  seed : int;
  rounds : int;
  rate : float;
  classes : string list;  (** fault classes enabled *)
  requests : int;  (** total requests issued *)
  identical : int;  (** ok responses byte-identical to baseline *)
  ok_dynamic : int;  (** ok responses with no baseline (stat) *)
  partial : int;  (** honest complete=false campaign reports *)
  typed_errors : (string * int) list;  (** error code -> count *)
  transport_failures : int;
      (** requests that exhausted retries on transport errors *)
  diverged : int;  (** ok responses whose payload differs: violations *)
  hung : int;  (** requests that outlived the client-side hang bound *)
  fault_stats : (string * int * int) list;  (** scope, ops, injected *)
  schedule_hash : string;
  store_quarantined : int;
  store_put_failures : int;
  pool_failed : int;
  survived : bool;  (** no divergence, no hangs, daemon stopped cleanly *)
}

val to_json : report -> Jsonx.t
(** Deterministic rendering (fixed field order) — two runs with the same
    seed must serialize identically; the determinism test depends on
    it. *)

val run :
  ?seed:int ->
  ?rounds:int ->
  ?rate:float ->
  ?classes:string list ->
  ?benchmark:string ->
  ?ci_width:float ->
  ?store_dir:string ->
  unit ->
  report
(** Run a chaos campaign. Defaults: seed 7, 3 rounds, fault rate 0.08
    per operation, all four classes (["store"; "journal"; "protocol";
    "pool"]), benchmark ["MM"], campaign [ci_width] 0.05, a fresh
    temporary store directory (kept if [store_dir] is given — CI uploads
    it on failure). Each round asks one [advf] per registry object, one
    [campaign], one [report] and one [stat]. The daemon runs with an
    LRU of 0 entries so every warm lookup exercises the faulty disk
    path.
    @raise Invalid_argument on an unknown class or benchmark. *)
