type t = { fd : Unix.file_descr }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_proto = function
  | Jsonx.Obj fields when not (List.mem_assoc "proto" fields) ->
    Jsonx.Obj (("proto", Jsonx.Int Protocol.version) :: fields)
  | req -> req

let request t req =
  Protocol.send t.fd (with_proto req);
  match Protocol.recv t.fd with
  | Some resp -> resp
  | None ->
    raise (Protocol.Protocol_error "daemon closed the connection mid-request")

let rpc ~socket req =
  let c = connect ~socket in
  Fun.protect ~finally:(fun () -> close c) (fun () -> request c req)

let error_of header =
  match Jsonx.str (Jsonx.member "status" header) with
  | Some "error" ->
    Some
      ( Option.value ~default:"?" (Jsonx.str (Jsonx.member "code" header)),
        Option.value ~default:"" (Jsonx.str (Jsonx.member "message" header)) )
  | _ -> None
