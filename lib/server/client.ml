type t = { fd : Unix.file_descr }

let connect ?timeout_s ~socket () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_UNIX socket);
     match timeout_s with
     | None -> ()
     | Some s ->
       (* a bounded wait on every read and write: a daemon that stalls
          or drops our response frame cannot hang the client — the
          syscall fails with EAGAIN and surfaces as Unix_error *)
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_proto = function
  | Jsonx.Obj fields when not (List.mem_assoc "proto" fields) ->
    Jsonx.Obj (("proto", Jsonx.Int Protocol.version) :: fields)
  | req -> req

let request t req =
  Protocol.send t.fd (with_proto req);
  match Protocol.recv t.fd with
  | Some resp -> resp
  | None ->
    raise (Protocol.Protocol_error "daemon closed the connection mid-request")

let rpc ?timeout_s ~socket req =
  let c = connect ?timeout_s ~socket () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> request c req)

let error_of header =
  match Jsonx.str (Jsonx.member "status" header) with
  | Some "error" ->
    Some
      ( Option.value ~default:"?" (Jsonx.str (Jsonx.member "code" header)),
        Option.value ~default:"" (Jsonx.str (Jsonx.member "message" header)) )
  | _ -> None

(* Whether a response-less transport failure may be retried for this
   request.  A campaign run advances its journal server-side; replaying
   one whose fate we never learned could interleave with the original
   still running.  (Results are content-addressed, so the *response*
   would be identical — it is the concurrent journal append we must not
   provoke.)  Everything else moardd serves is a pure read. *)
let idempotent req =
  match req with
  | Jsonx.Obj fields -> (
    match List.assoc_opt "op" fields with
    | Some (Jsonx.Str "campaign") -> false
    | _ -> true)
  | _ -> true

(* Typed errors that mean "try again later": the daemon refused before
   doing any work.  "integrity" is a request whose checksum did not
   survive the wire — rejected before dispatch, so a resend is safe
   even for non-idempotent ops.  "unavailable" is the cluster proxy
   reporting that no shard answered — by then the request may already
   have escaped to a shard, so a resend is safe only for idempotent
   ops (a duplicate pure read recomputes byte-identical content;
   a duplicate campaign could interleave with a journal append). *)
let retryable_code ~idempotent = function
  | "overloaded" | "draining" | "integrity" -> true
  | "unavailable" -> idempotent
  | _ -> false

(* Connection-refused family: the daemon is not there (yet). *)
let retryable_connect = function
  | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
    ->
    true
  | _ -> false

exception Retry of exn

(* Capped exponential with deterministic jitter in [1/2, 1) of the
   cap — jitter decorrelates retry herds, the explicit stream keeps any
   single schedule reproducible.  Exposed so tests and the cluster
   proxy share the exact schedule. *)
let backoff ~base_delay_s ~max_delay_s rng i =
  let cap = Float.min max_delay_s (base_delay_s *. (2. ** float_of_int i)) in
  cap *. (0.5 +. (0.5 *. Moard_chaos.Rng.next_float rng))

let rpc_retry ?(attempts = 5) ?(base_delay_s = 0.05) ?(max_delay_s = 2.0)
    ?timeout_s ?(seed = 0) ?rng ~socket req =
  if attempts < 1 then invalid_arg "Client.rpc_retry: attempts";
  let rng =
    match rng with Some r -> r | None -> Moard_chaos.Rng.make seed
  in
  let backoff i = backoff ~base_delay_s ~max_delay_s rng i in
  let may_retry_transport = idempotent req in
  let rec go i =
    let attempt () =
      (* connect failures are always retryable (no request escaped);
         past that point only idempotent requests are *)
      let c =
        try connect ?timeout_s ~socket ()
        with e when retryable_connect e -> raise (Retry e)
      in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          try request c req
          with
          | (Protocol.Protocol_error _ | Unix.Unix_error _) as e
          when may_retry_transport
          ->
            raise (Retry e))
    in
    match attempt () with
    | (header, _) as resp -> (
      match error_of header with
      | Some (code, _)
        when retryable_code ~idempotent:may_retry_transport code
             && i + 1 < attempts ->
        Unix.sleepf (backoff i);
        go (i + 1)
      | _ -> resp)
    | exception Retry e ->
      if i + 1 < attempts then begin
        Unix.sleepf (backoff i);
        go (i + 1)
      end
      else raise e
  in
  go 0
