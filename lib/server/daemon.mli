(** [moardd]: the concurrent MOARD analysis daemon.

    Listens on a Unix socket speaking {!Protocol}, schedules [advf] /
    [campaign] / [report] requests onto a bounded {!Pool} of OCaml 5
    domains, and serves results out of a content-addressed {!Moard_store}
    — so every query is computed at most once per store, and repeated
    queries are cache hits at memory speed.

    Concurrency shape: one golden-run {!Moard_inject.Context} per program,
    created once (single-flight) and shared; each worker analyzes on a
    fresh {!Moard_inject.Context.shard} of it, which is the purity
    contract that makes daemon-served payloads byte-identical to offline
    CLI output. Parallelism comes from concurrent requests across the
    pool, not from splitting one request.

    Compute requests are additionally single-flight on their canonical
    signature ({!Jsonx.signature} with transport fields stripped): M
    concurrent clients asking the same question elect one leader and
    share its response — followers see [served = "coalesced"],
    [cached = true], and the identical payload bytes.  A request whose
    client connection dies while it waits (a hedged request whose other
    leg won, or a crashed caller) is cooperatively cancelled unless
    followers are coalesced behind it.

    A ["warm"] request queues an [advf] precompute and acknowledges
    immediately; a background thread drains the queue through the
    normal dispatch path strictly when the pool is idle, so warming
    fills the store during quiet slots without delaying live queries —
    and live queries coalesce onto an in-progress warm compute.
    Requests carrying a ["req_fnv"] checksum (stamped by the cluster
    proxy) are verified before dispatch and refused with a typed
    [integrity] error on mismatch, which is always safe to resend.

    Overload and shutdown semantics: a full queue returns an explicit
    [overloaded] error (never a silent drop); a request exceeding the
    per-request timeout (measured on the monotonic clock — wall-time
    jumps can neither expire nor immortalize a request) gets a [timeout]
    error {e and its job is cooperatively cancelled}: the computation
    stops at its next per-site or per-batch cancellation point, freeing
    the worker — nothing partial is stored, and a campaign's committed
    batches stay journalled for resume. A job that dies for any other
    reason resolves its request with a typed [internal] error (the last
    one is surfaced in [stat]); an accepted request never waits out the
    timeout on a silent failure. SIGTERM/SIGINT (or {!stop}) drain
    gracefully — accepting stops, in-flight requests finish, a campaign
    mid-flight stops at its next batch boundary with every resolved batch
    already committed to its journal in the store directory, and the
    socket file is removed.

    Every fallible boundary — store I/O, journal I/O, socket reads and
    writes, job execution — runs through the {!Moard_chaos.Chaos.shims}
    in the config. Production uses {!Moard_chaos.Chaos.passthrough}; the
    chaos harness substitutes fault-injecting shims, which is how the
    semantics above are actually proven. *)

type config = {
  socket : string;       (** Unix socket path (unlinked on shutdown) *)
  store_dir : string;    (** result-store root *)
  workers : int;         (** worker domains *)
  queue : int;           (** pending-job bound (backpressure) *)
  timeout_s : float;     (** per-request timeout *)
  lru_entries : int;
  lru_bytes : int;
  batch : bool;
      (** resolve injections through the bit-parallel masking kernel
          (default); served payloads are byte-identical either way, so
          this is a daemon-wide performance switch, never a request
          parameter or a store-key component *)
  shims : Moard_chaos.Chaos.shims;
      (** effects implementations for store/journal/socket/job I/O;
          {!Moard_chaos.Chaos.passthrough} in production *)
}

val default_config : config
(** socket ["moardd.sock"], store [".moard-store"], workers =
    [Domain.recommended_domain_count () - 1] (min 1), queue [64],
    timeout [300s], LRU [256] entries / [64 MiB], batch on, passthrough
    shims. *)

type t

val start : config -> t
(** Bind the socket (replacing a stale file), spawn the pool and the
    accept thread, return immediately.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : t -> unit
(** Graceful drain: stop accepting, let in-flight requests finish, drain
    the pool, close and unlink the socket. Blocks until done.
    Idempotent. *)

val stopping : t -> bool

val store : t -> Moard_store.Store.t
(** The daemon's store handle (the test suite corrupts entries through
    it). *)

val pool : t -> Pool.t
(** The daemon's worker pool (the chaos harness and the test suite read
    its counters). *)

val run : config -> unit
(** {!start}, install SIGTERM/SIGINT handlers that trigger the graceful
    drain, and block until shutdown completes. *)
