type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" x)
    else Buffer.add_string b (Printf.sprintf "%.17g" x)
  | Str s -> escape b s
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let u =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape"
            in
            utf8_of_code b u
          | _ -> fail "unknown escape");
          go ())
        | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floating =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if floating then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Some (Str s) -> Some s | _ -> None

let int = function
  | Some (Int i) -> Some i
  | Some (Float x) when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let float = function
  | Some (Float x) -> Some x
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool = function Some (Bool b) -> Some b | _ -> None
let list = function Some (Arr xs) -> Some xs | _ -> None

(* ---------------- canonical signature ---------------- *)

let signature ?(drop = []) v =
  match v with
  | Obj fields ->
    let kept = List.filter (fun (k, _) -> not (List.mem k drop)) fields in
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) kept
    in
    to_string (Obj sorted)
  | v -> to_string v
