(** The [moardd] wire protocol: length-prefixed JSON over a Unix socket.

    A message is one JSON {e header} frame, optionally followed by one raw
    {e payload} frame:

    {v
    [4-byte big-endian length][header JSON]
    [4-byte big-endian length][payload bytes]     (iff the header says so)
    v}

    The header announces a payload by carrying a ["payload_bytes": n]
    field, and the payload frame's length must equal [n]. Payloads are
    opaque bytes — the store's canonical result strings pass through
    untouched, which is what makes daemon-served results byte-comparable
    with offline CLI output.

    Requests are headers: [{"proto": 1, "op": "advf", ...}]. Responses
    are [{"status": "ok", ...}] or [{"status": "error", "code": ...,
    "message": ...}]. See DESIGN.md §10 for the op catalogue. *)

val version : int
(** Protocol version; both sides send it, either side may reject a
    mismatch ([code = "proto-mismatch"]). *)

val max_frame : int
(** Frame-length sanity bound (16 MiB); longer frames are a protocol
    error. *)

exception Protocol_error of string
(** Framing violation: mid-frame EOF, oversized or negative length,
    payload length or checksum disagreeing with the header, unparseable
    header. *)

val fnv_hex : string -> string
(** FNV-1a64 hex digest (the store's record checksum), used for the
    ["payload_fnv"] header field and for request integrity checksums
    (["req_fnv"]) on inter-node hops. *)

val send :
  ?sock:Moard_chaos.Sock.t -> Unix.file_descr -> ?payload:string -> Jsonx.t ->
  unit
(** Write a header (with ["payload_bytes"] and ["payload_fnv"] appended
    when [payload] is given) and the payload frame. [recv] verifies the
    checksum when present, so a silently corrupted payload frame —
    e.g. a flipped bit on the proxy–shard wire — surfaces as
    [Protocol_error] instead of corrupt bytes reaching a client. A
    single [send] is atomic with respect
    to other senders only if callers serialize per socket — the daemon
    and client both do. [sock] (default: the real syscalls) is the chaos
    shim point for truncated/dropped/delayed frames. *)

val recv :
  ?sock:Moard_chaos.Sock.t -> Unix.file_descr ->
  (Jsonx.t * string option) option
(** Read one message. [None] on clean EOF at a message boundary.
    @raise Protocol_error on a torn or malformed message. *)

(** {2 Header constructors} *)

val error : code:string -> message:string -> Jsonx.t
val ok : (string * Jsonx.t) list -> Jsonx.t
