(** The daemon's bounded worker pool: a fixed set of OCaml 5 domains
    draining one bounded job queue.

    Backpressure is explicit: {!submit} on a full queue returns
    [`Overloaded] immediately — jobs are never silently dropped and the
    queue never grows past its bound; the daemon turns that into an
    [overloaded] protocol error the client can retry against. {!drain} is
    the graceful-shutdown half: no new work is accepted, queued jobs
    still run, and the call returns only when every worker has finished
    and exited — so anything a job journals or writes to the store is on
    disk when the daemon's drain completes. *)

type t

val create :
  ?wrap:((unit -> unit) -> unit -> unit) -> workers:int -> queue:int -> unit -> t
(** [workers] domains (at least 1) over a queue bounded at [queue]
    pending jobs (at least 1). [wrap] (default: identity) is applied to
    every job as the worker picks it up — the chaos harness's job shim
    (raising/slow jobs) hooks in here. *)

val submit :
  ?on_error:(exn -> unit) ->
  t ->
  (unit -> unit) ->
  [ `Accepted | `Overloaded | `Draining ]
(** Enqueue a job. Exceptions escaping a job are caught and counted, not
    propagated (a worker never dies); [on_error] then runs on the worker
    with the exception, so a submitter awaiting the job's result can be
    handed a typed error instead of waiting out its timeout. An
    exception escaping [on_error] itself is swallowed. *)

val drain : t -> unit
(** Stop accepting, run out the queue, join every worker. Idempotent. *)

val workers : t -> int
val queued : t -> int
val running : t -> int
val executed : t -> int
val rejected : t -> int
(** Submissions refused with [`Overloaded]. *)

val failed : t -> int
(** Jobs whose exception was swallowed. *)

val last_error : t -> string option
(** The most recent swallowed job exception, rendered — surfaced by the
    daemon's [stat] so silent failures are observable. *)
