module Chaos = Moard_chaos.Chaos
module Monotime = Moard_chaos.Monotime
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Store = Moard_store.Store
module Query = Moard_store.Query

type report = {
  seed : int;
  rounds : int;
  rate : float;
  classes : string list;
  requests : int;
  identical : int;
  ok_dynamic : int;
  partial : int;
  typed_errors : (string * int) list;
  transport_failures : int;
  diverged : int;
  hung : int;
  fault_stats : (string * int * int) list;
  schedule_hash : string;
  store_quarantined : int;
  store_put_failures : int;
  pool_failed : int;
  survived : bool;
}

let to_json r =
  Jsonx.Obj
    [
      ("seed", Jsonx.Int r.seed);
      ("rounds", Jsonx.Int r.rounds);
      ("rate", Jsonx.Float r.rate);
      ("classes", Jsonx.Arr (List.map (fun c -> Jsonx.Str c) r.classes));
      ("requests", Jsonx.Int r.requests);
      ("identical", Jsonx.Int r.identical);
      ("ok_dynamic", Jsonx.Int r.ok_dynamic);
      ("partial", Jsonx.Int r.partial);
      ( "typed_errors",
        Jsonx.Obj (List.map (fun (c, n) -> (c, Jsonx.Int n)) r.typed_errors) );
      ("transport_failures", Jsonx.Int r.transport_failures);
      ("diverged", Jsonx.Int r.diverged);
      ("hung", Jsonx.Int r.hung);
      ( "faults",
        Jsonx.Arr
          (List.map
             (fun (s, ops, injected) ->
               Jsonx.Obj
                 [
                   ("scope", Jsonx.Str s);
                   ("ops", Jsonx.Int ops);
                   ("injected", Jsonx.Int injected);
                 ])
             r.fault_stats) );
      ("schedule_hash", Jsonx.Str r.schedule_hash);
      ("store_quarantined", Jsonx.Int r.store_quarantined);
      ("store_put_failures", Jsonx.Int r.store_put_failures);
      ("pool_failed", Jsonx.Int r.pool_failed);
      ("survived", Jsonx.Bool r.survived);
    ]

let all_classes = [ "store"; "journal"; "protocol"; "pool" ]

let scopes_of_class = function
  | "store" -> [ Chaos.Store_read; Chaos.Store_write ]
  | "journal" -> [ Chaos.Journal_read; Chaos.Journal_write ]
  | "protocol" -> [ Chaos.Sock_recv; Chaos.Sock_send ]
  | "pool" -> [ Chaos.Job ]
  | c -> invalid_arg ("Chaos_harness.run: unknown fault class " ^ c)

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

(* Requests that never came back inside this bound count as hung — with
   socket timeouts armed on every connection this should be impossible,
   which is exactly why it is the invariant. *)
let hang_bound_s = 60.0

let run ?(seed = 7) ?(rounds = 3) ?(rate = 0.08) ?(classes = all_classes)
    ?(benchmark = "MM") ?(ci_width = 0.05) ?store_dir () =
  let e =
    match Registry.find benchmark with
    | e -> e
    | exception Not_found ->
      invalid_arg ("Chaos_harness.run: unknown benchmark " ^ benchmark)
  in
  let enabled = List.concat_map scopes_of_class classes in
  (* Fault-free baselines, computed offline before any fault can fire.
     Daemon workers analyze on fresh shards of an identical golden
     context, so under zero faults these are the exact served bytes. *)
  let ctx = Context.make (e.Registry.workload ()) in
  let options = { Model.default_options with Model.batch = true } in
  let advf_baselines =
    List.map
      (fun o -> (o, Query.advf_payload ~options ctx ~object_name:o))
      e.Registry.objects
  in
  let plan =
    Plan.make ~seed:42 ~confidence:0.95 ~ci_width ~batch:64 ~max_samples:(-1)
      ctx ~objects:e.Registry.objects
  in
  let campaign_baseline = Query.campaign_payload (Engine.run ctx plan) in
  let chaos =
    Chaos.make
      ~rates:(fun s -> if List.mem s enabled then rate else 0.)
      ~seed ()
  in
  let keep_store, store_dir =
    match store_dir with
    | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o755;
      (true, d)
    | None -> (false, fresh_dir "moard-chaos-store")
  in
  let sock_dir = fresh_dir "moard-chaos-sock" in
  let socket = Filename.concat sock_dir "moardd.sock" in
  let d =
    Daemon.start
      {
        Daemon.default_config with
        Daemon.socket;
        store_dir;
        workers = 1;
        queue = 16;
        timeout_s = 20.0;
        (* an empty LRU sends every warm lookup to the (faulty) disk *)
        lru_entries = 0;
        shims = Chaos.shims chaos;
      }
  in
  let requests = ref 0
  and identical = ref 0
  and ok_dynamic = ref 0
  and partial = ref 0
  and transport = ref 0
  and diverged = ref 0
  and hung = ref 0 in
  let typed : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let issue ?baseline req =
    incr requests;
    let t0 = Monotime.now () in
    let outcome =
      try
        Some
          (Client.rpc_retry ~attempts:4 ~base_delay_s:0.02 ~max_delay_s:0.3
             ~timeout_s:5.0 ~seed:(seed + !requests) ~socket req)
      with Protocol.Protocol_error _ | Unix.Unix_error _ | Sys_error _ -> None
    in
    if Monotime.now () -. t0 > hang_bound_s then incr hung;
    (match outcome with
    | None -> incr transport
    | Some (header, payload) -> (
      match Client.error_of header with
      | Some (code, _) ->
        Hashtbl.replace typed code
          (1 + Option.value ~default:0 (Hashtbl.find_opt typed code))
      | None -> (
        match baseline with
        | None -> incr ok_dynamic
        | Some want ->
          if Jsonx.bool (Jsonx.member "complete" header) = Some false then
            (* an honest partial report off an interrupted journal — typed
               as such in the header, not a silent wrong answer *)
            incr partial
          else if Option.value ~default:"" payload = want then incr identical
          else incr diverged)));
    (* let the daemon's previous connection thread consume its EOF read
       before the next request opens a socket: keeps the per-scope fault
       streams aligned with the same operations run after run *)
    Unix.sleepf 0.01
  in
  for _round = 1 to rounds do
    List.iter
      (fun (o, base) ->
        issue ~baseline:base
          (Jsonx.Obj
             [
               ("op", Jsonx.Str "advf");
               ("benchmark", Jsonx.Str benchmark);
               ("object", Jsonx.Str o);
             ]))
      advf_baselines;
    let campaign_req op =
      Jsonx.Obj
        [
          ("op", Jsonx.Str op);
          ("benchmark", Jsonx.Str benchmark);
          ("ci_width", Jsonx.Float ci_width);
        ]
    in
    issue ~baseline:campaign_baseline (campaign_req "campaign");
    issue ~baseline:campaign_baseline (campaign_req "report");
    issue (Jsonx.Obj [ ("op", Jsonx.Str "stat") ])
  done;
  let stopped_cleanly =
    match Daemon.stop d with () -> true | exception _ -> false
  in
  let s = Store.stat (Daemon.store d) in
  let pool_failed = Pool.failed (Daemon.pool d) in
  let survived = !diverged = 0 && !hung = 0 && stopped_cleanly in
  (try rm_rf sock_dir with Unix.Unix_error _ | Sys_error _ -> ());
  if (not keep_store) && survived then
    (try rm_rf store_dir with Unix.Unix_error _ | Sys_error _ -> ());
  {
    seed;
    rounds;
    rate;
    classes;
    requests = !requests;
    identical = !identical;
    ok_dynamic = !ok_dynamic;
    partial = !partial;
    typed_errors =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) typed []);
    transport_failures = !transport;
    diverged = !diverged;
    hung = !hung;
    fault_stats =
      List.map
        (fun (s, ops, injected) -> (Chaos.scope_name s, ops, injected))
        (Chaos.stats chaos);
    schedule_hash = Chaos.schedule_hash chaos;
    store_quarantined = s.Store.quarantined;
    store_put_failures = s.Store.put_failures;
    pool_failed;
    survived;
  }
