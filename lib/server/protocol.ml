module Sock = Moard_chaos.Sock

let version = 1
let max_frame = 16 * 1024 * 1024

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let write_all ~sock fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = sock.Sock.write fd b !off !len in
    off := !off + n;
    len := !len - n
  done

let write_frame ~sock fd s =
  let n = String.length s in
  if n > max_frame then fail "frame of %d bytes exceeds max %d" n max_frame;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string s 0 b 4 n;
  write_all ~sock fd b 0 (4 + n)

(* Read exactly [len] bytes; [None] on EOF at offset 0 when [eof_ok]. *)
let read_exact ?(eof_ok = false) ~sock fd len =
  let b = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while !off < len && not !eof do
    let n = sock.Sock.read fd b !off (len - !off) in
    if n = 0 then
      if !off = 0 && eof_ok then eof := true
      else fail "connection closed mid-frame (%d of %d bytes)" !off len
    else off := !off + n
  done;
  if !eof then None else Some b

let read_frame ?eof_ok ~sock fd =
  match read_exact ?eof_ok ~sock fd 4 with
  | None -> None
  | Some hdr ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then fail "bad frame length %d" len;
    (match read_exact ~sock fd len with
    | Some b -> Some (Bytes.unsafe_to_string b)
    | None -> assert false)

let fnv_hex = Moard_store.Record.fnv1a64_hex

let send ?(sock = Sock.real) fd ?payload header =
  let header =
    match (payload, header) with
    | None, h -> h
    | Some p, Jsonx.Obj fields ->
      (* length alone cannot catch a flipped bit on an inter-node hop;
         the checksum can, and the store's canonical payloads make it
         cheap relative to the compute they carry. Stale copies from an
         earlier hop (a proxy re-sending a shard's header) are replaced,
         not duplicated. *)
      let fields =
        List.filter
          (fun (k, _) ->
            not (String.equal k "payload_bytes")
            && not (String.equal k "payload_fnv"))
          fields
      in
      Jsonx.Obj
        (fields
        @ [
            ("payload_bytes", Jsonx.Int (String.length p));
            ("payload_fnv", Jsonx.Str (fnv_hex p));
          ])
    | Some _, _ -> invalid_arg "Protocol.send: payload on a non-object header"
  in
  write_frame ~sock fd (Jsonx.to_string header);
  match payload with Some p -> write_frame ~sock fd p | None -> ()

let recv ?(sock = Sock.real) fd =
  match read_frame ~eof_ok:true ~sock fd with
  | None -> None
  | Some raw ->
    let header =
      match Jsonx.parse raw with
      | Ok h -> h
      | Error e -> fail "bad header: %s" e
    in
    (match Jsonx.int (Jsonx.member "payload_bytes" header) with
    | None -> Some (header, None)
    | Some n ->
      (match read_frame ~sock fd with
      | None -> fail "connection closed before announced payload"
      | Some p ->
        if String.length p <> n then
          fail "payload frame of %d bytes where header announced %d"
            (String.length p) n;
        (match Jsonx.str (Jsonx.member "payload_fnv" header) with
        | Some h when not (String.equal h (fnv_hex p)) ->
          fail "payload checksum mismatch (%s on the wire, %s announced)"
            (fnv_hex p) h
        | _ -> ());
        Some (header, Some p)))

let error ~code ~message =
  Jsonx.Obj
    [
      ("status", Jsonx.Str "error");
      ("code", Jsonx.Str code);
      ("message", Jsonx.Str message);
    ]

let ok fields = Jsonx.Obj (("status", Jsonx.Str "ok") :: fields)
