(* The resilience advisor: rank objects by expected SDC contribution,
   generate candidate protection plans, and measure what each buys. See
   advise.mli for the model. Everything here is a deterministic function
   of (workload, model, seed, confidence, ci_width): the ranking comes
   from a seeded campaign, the transforms are deterministic rewrites, and
   the residual campaigns reuse the same seed on the protected variants. *)

module P = Moard_ir.Program
module T = Moard_ir.Types
module W = Moard_inject.Workload
module Context = Moard_inject.Context
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Protect = Moard_opt.Protect
module Machine = Moard_vm.Machine

type plan_outcome = {
  plan : Protect.plan;
  id : string;
  advf : float;
  lo : float;
  hi : float;
  vulnerability : float;
  reduction : float;
  golden_steps : int;
  overhead : float;
  samples : int;
  runs : int;
  pareto : bool;
}

type object_advice = {
  object_name : string;
  bytes : int;
  sites : int;
  population : int;
  advf : float;
  lo : float;
  hi : float;
  vulnerability : float;
  access_rate : float;
  contribution : float;
  recommended : string option;
  plans : plan_outcome list;
}

type t = {
  workload_name : string;
  model : Moard_bits.Errmodel.t;
  seed : int;
  confidence : float;
  ci_width : float;
  base_steps : int;
  objects : object_advice list;
}

(* ------------------------------------------------------------------ *)
(* Fault-free differential oracle: bit images of every output global,
   or the trap. A transform that changes either is rejected outright —
   protection must be invisible until a fault lands. *)

type observed = Out of int64 list | Trap of string

let observe_run (wl : W.t) =
  let m = Machine.load wl.W.program in
  let r = Machine.run m ~entry:wl.W.entry in
  match r.Machine.outcome with
  | Machine.Finished _ ->
    Out
      (List.concat_map
         (fun name ->
           match (P.global wl.W.program name).P.gty with
           | T.F64 ->
             Array.to_list
               (Array.map Int64.bits_of_float
                  (Machine.read_f64s m r.Machine.mem name))
           | _ -> Array.to_list (Machine.read_i64s m r.Machine.mem name))
         wl.W.outputs)
  | Machine.Trapped t -> Trap (Moard_vm.Trap.to_string t)

let assert_preserving ~base (pw : W.t) ~id =
  if observe_run pw <> base then
    failwith
      (Printf.sprintf
         "Advise: plan %s is not behaviour-preserving on the fault-free run"
         id)

(* ------------------------------------------------------------------ *)

let dominates (v1, o1) (v2, o2) =
  v1 <= v2 && o1 <= o2 && (v1 < v2 || o1 < o2)

let run ?(model = Moard_bits.Errmodel.Single_bit) ?(seed = 42)
    ?(confidence = 0.95) ?(ci_width = 0.02) ?(max_samples = -1) ?domains
    ?batch ?cancel ?objects (wl : W.t) =
  let objects =
    match objects with Some l -> l | None -> wl.W.targets
  in
  let ctx = Context.make wl in
  let base_plan =
    Plan.make ~model ~seed ~confidence ~ci_width ~max_samples ctx ~objects
  in
  let base_r = Engine.run ?domains ?batch ?cancel ctx base_plan in
  let base_steps = Context.golden_steps ctx in
  let base_out = observe_run wl in
  let segment fn = W.in_segment wl fn in
  let advice =
    Array.to_list base_r.Engine.objects
    |> List.map (fun (o : Engine.object_result) ->
           let obj = o.Engine.object_name in
           let advf = o.Engine.estimate in
           let vuln = 1.0 -. advf in
           let bytes = P.global_bytes (P.global wl.W.program obj) in
           let access_rate =
             float_of_int o.Engine.sites /. float_of_int base_steps
           in
           let plans =
             Protect.candidates wl.W.program ~segment ~obj
             |> List.map (fun plan ->
                    let id = Protect.plan_id plan in
                    let pw = Protect.protect_workload wl plan in
                    assert_preserving ~base:base_out pw ~id;
                    let pctx = Context.make pw in
                    let pplan =
                      Plan.make ~variant:id ~model ~seed ~confidence
                        ~ci_width ~max_samples pctx ~objects:[ obj ]
                    in
                    let pr = Engine.run ?domains ?batch ?cancel pctx pplan in
                    let po = pr.Engine.objects.(0) in
                    let p_advf = po.Engine.estimate in
                    let p_vuln = 1.0 -. p_advf in
                    let steps = Context.golden_steps pctx in
                    {
                      plan;
                      id;
                      advf = p_advf;
                      lo = po.Engine.lo;
                      hi = po.Engine.hi;
                      vulnerability = p_vuln;
                      reduction = vuln /. Float.max p_vuln 1e-12;
                      golden_steps = steps;
                      overhead =
                        float_of_int steps /. float_of_int base_steps;
                      samples = po.Engine.samples;
                      runs = po.Engine.runs;
                      pareto = false;
                    })
           in
           (* Pareto front over (residual vulnerability, overhead); the
              unprotected program is the implicit (vuln, 1.0) point, so a
              plan that buys nothing is dominated out. *)
           let points =
             (vuln, 1.0)
             :: List.map
                  (fun (p : plan_outcome) -> (p.vulnerability, p.overhead))
                  plans
           in
           let plans =
             List.map
               (fun (p : plan_outcome) ->
                 let mine = (p.vulnerability, p.overhead) in
                 let dominated =
                   List.exists (fun q -> dominates q mine) points
                 in
                 { p with pareto = not dominated })
               plans
           in
           let recommended =
             plans
             |> List.filter (fun (p : plan_outcome) ->
                    p.pareto && p.reduction > 1.0)
             |> List.fold_left
                  (fun best p ->
                    match best with
                    | None -> Some p
                    | Some b ->
                      if
                        p.reduction > b.reduction
                        || (p.reduction = b.reduction
                           && p.overhead < b.overhead)
                      then Some p
                      else best)
                  None
             |> Option.map (fun (p : plan_outcome) -> p.id)
           in
           {
             object_name = obj;
             bytes;
             sites = o.Engine.sites;
             population = o.Engine.population;
             advf;
             lo = o.Engine.lo;
             hi = o.Engine.hi;
             vulnerability = vuln;
             access_rate;
             contribution = vuln *. float_of_int bytes *. access_rate;
             recommended;
             plans;
           })
  in
  let objects =
    List.stable_sort
      (fun a b ->
        match compare b.contribution a.contribution with
        | 0 -> compare a.object_name b.object_name
        | c -> c)
      advice
  in
  {
    workload_name = wl.W.name;
    model;
    seed;
    confidence;
    ci_width;
    base_steps;
    objects;
  }
