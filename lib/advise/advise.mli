(** The resilience advisor — closes the loop from measurement to
    protection (ROADMAP item 5; the paper's §VII ABFT case study).

    Three deterministic stages, all derived from one seeded design:

    + {b Rank}: a stratified campaign measures each target object's
      aDVF; objects are ordered by expected SDC contribution
      [(1 - aDVF) x size_bytes x access_rate], where the access rate is
      the object's read-consumption site density over the golden trace
      (sites / golden steps). The aDVF estimate here is the masking
      fraction, so [1 - aDVF] is the fraction of consumed corruptions
      that end in a wrong or crashed outcome.
    + {b Protect}: {!Moard_opt.Protect.candidates} generates every
      applicable protection plan (ABFT checksums, duplication with
      compare, address clamps, and the clamp+dwc combination); each is
      applied as an IR transform and checked behaviour-preserving on the
      fault-free run (bit-identical outputs, identical traps) before any
      measurement — a plan that fails the oracle fails the whole run.
    + {b Measure}: each protected variant runs the same seeded campaign
      (its plan carries the protection id as the {!Moard_campaign.Plan.t}
      variant tag, so journals and store keys never collide with the
      unprotected ones). Residual vulnerability, the reduction factor
      and the instruction-count overhead (protected / unprotected golden
      steps) form a Pareto front per object, with the unprotected
      program as the implicit [(vulnerability, 1.0)] point. *)

type plan_outcome = {
  plan : Moard_opt.Protect.plan;
  id : string;             (** {!Moard_opt.Protect.plan_id} *)
  advf : float;            (** residual masking fraction *)
  lo : float;
  hi : float;              (** its confidence interval *)
  vulnerability : float;   (** [1 - advf] *)
  reduction : float;       (** baseline vulnerability / max(residual, 1e-12) *)
  golden_steps : int;      (** protected golden-trace length *)
  overhead : float;        (** protected / unprotected golden steps *)
  samples : int;
  runs : int;
  pareto : bool;           (** on the (vulnerability, overhead) front *)
}

type object_advice = {
  object_name : string;
  bytes : int;
  sites : int;
  population : int;
  advf : float;
  lo : float;
  hi : float;
  vulnerability : float;
  access_rate : float;     (** sites / golden steps *)
  contribution : float;    (** vulnerability x bytes x access_rate *)
  recommended : string option;
      (** Pareto plan with the largest reduction (ties: lowest overhead);
          [None] when no plan beats the unprotected program *)
  plans : plan_outcome list;  (** candidate order of {!Moard_opt.Protect.candidates} *)
}

type t = {
  workload_name : string;
  model : Moard_bits.Errmodel.t;
  seed : int;
  confidence : float;
  ci_width : float;
  base_steps : int;        (** unprotected golden-trace length *)
  objects : object_advice list;  (** descending expected SDC contribution *)
}

val run :
  ?model:Moard_bits.Errmodel.t ->
  ?seed:int ->
  ?confidence:float ->
  ?ci_width:float ->
  ?max_samples:int ->
  ?domains:int ->
  ?batch:bool ->
  ?cancel:Moard_chaos.Cancel.t ->
  ?objects:string list ->
  Moard_inject.Workload.t ->
  t
(** Rank, protect and measure. [objects] defaults to the workload's
    target objects. Defaults mirror {!Moard_campaign.Plan.make}:
    single-bit model, seed 42, 95% confidence, 0.02 target half-width,
    no sample cap. Deterministic per (workload, parameters) — neither
    [domains] nor [batch] changes a byte of the result, since campaigns
    are domain-count invariant and the bit-parallel kernel is exact.
    [cancel] is polled at engine batch boundaries
    ({!Moard_chaos.Cancel.Cancelled} propagates; nothing is returned).
    @raise Invalid_argument if an object is unknown or has no fault sites
    @raise Failure if a generated plan fails the fault-free differential
    oracle (a transform bug — never expected) *)
