type entry = {
  benchmark : string;
  description : string;
  routine : string;
  objects : string list;
  workload : unit -> Moard_inject.Workload.t;
  workload_at : int -> Moard_inject.Workload.t;
  parallel_at : (harts:int -> int -> Moard_inject.Workload.t) option;
  default_size : int;
  sizes : int array;
}

(* Every entry maps the uniform size knob onto the kernel's own primary
   dimension (n, grid, nelem, particles); the other knobs stay at their
   defaults so [workload_at default_size] builds exactly the historical
   default workload. [sizes] lists the canonical cross-size ladder for the
   predictor: three training sizes in ascending order, then the holdout
   size where ground truth is still computable. All four respect the
   kernel's own validity constraints (powers of two for FT, the level
   divisibility of MG, the n >= 5 floor of SP). *)
let table1 =
  [
    {
      benchmark = "CG";
      description = "Conjugate Gradient, irregular memory access";
      routine = "conj_grad";
      objects = [ "r"; "colidx" ];
      workload = (fun () -> Cg.workload ());
      workload_at = (fun n -> Cg.workload ~n ());
      parallel_at = Some (fun ~harts n -> Cg.parallel_workload ~n ~harts ());
      default_size = 18;
      sizes = [| 10; 14; 18; 24 |];
    };
    {
      benchmark = "MG";
      description = "Multi-Grid on a sequence of meshes";
      routine = "mg3P";
      objects = [ "u"; "r" ];
      workload = (fun () -> Mg.workload ());
      workload_at = (fun n -> Mg.workload ~n ());
      parallel_at = None;
      default_size = 16;
      sizes = [| 8; 16; 32; 64 |];
    };
    {
      benchmark = "FT";
      description = "Discrete Fourier Transform";
      routine = "fftXYZ";
      objects = [ "plane"; "exp1" ];
      workload = (fun () -> Ft.workload ());
      workload_at = (fun n -> Ft.workload ~n ());
      parallel_at = None;
      default_size = 8;
      sizes = [| 4; 8; 16; 32 |];
    };
    {
      benchmark = "BT";
      description = "Block Tri-diagonal solver";
      routine = "x_solve";
      objects = [ "grid_points"; "u" ];
      workload = (fun () -> Bt.workload ());
      workload_at = (fun n -> Bt.workload ~n ());
      parallel_at = None;
      default_size = 5;
      sizes = [| 4; 5; 6; 8 |];
    };
    {
      benchmark = "SP";
      description = "Scalar Penta-diagonal solver";
      routine = "x_solve";
      objects = [ "rhoi"; "grid_points" ];
      workload = (fun () -> Sp.workload ());
      workload_at = (fun n -> Sp.workload ~n ());
      parallel_at = None;
      default_size = 5;
      sizes = [| 5; 6; 7; 9 |];
    };
    {
      benchmark = "LU";
      description = "Lower-Upper Gauss-Seidel solver";
      routine = "ssor";
      objects = [ "u"; "rsd" ];
      workload = (fun () -> Lu.workload ());
      workload_at = (fun n -> Lu.workload ~n ());
      parallel_at = None;
      default_size = 4;
      sizes = [| 4; 5; 6; 8 |];
    };
    {
      benchmark = "LULESH";
      description = "Unstructured Lagrangian explicit shock hydrodynamics";
      routine = "CalcMonotonicQRegionForElems";
      objects = [ "m_elemBC"; "m_delv_zeta" ];
      workload = (fun () -> Lulesh.workload ());
      workload_at = (fun n -> Lulesh.workload ~nelem:n ());
      parallel_at =
        Some (fun ~harts n -> Lulesh.parallel_workload ~nelem:n ~harts ());
      default_size = 20;
      sizes = [| 12; 16; 20; 28 |];
    };
    {
      benchmark = "AMG";
      description = "Algebraic multigrid solver (GMRES with AMG smoothing)";
      routine = "hypre_GMRESSolve";
      objects = [ "ipiv"; "A" ];
      workload = (fun () -> Amg.workload ());
      workload_at = (fun n -> Amg.workload ~grid:n ());
      parallel_at = None;
      default_size = 3;
      sizes = [| 3; 4; 5; 7 |];
    };
  ]

let case_studies =
  [
    {
      benchmark = "MM";
      description = "Matrix multiplication, no protection";
      routine = "mm";
      objects = [ "C" ];
      workload = (fun () -> Abft_mm.workload ());
      workload_at = (fun n -> Abft_mm.workload ~n ());
      parallel_at =
        Some (fun ~harts n -> Abft_mm.parallel_workload ~n ~harts ());
      default_size = 6;
      sizes = [| 4; 5; 6; 8 |];
    };
    {
      benchmark = "ABFT_MM";
      description = "Matrix multiplication with checksum ABFT";
      routine = "mm+verify";
      objects = [ "C" ];
      workload = (fun () -> Abft_mm.workload ~abft:true ());
      workload_at = (fun n -> Abft_mm.workload ~n ~abft:true ());
      parallel_at = None;
      default_size = 6;
      sizes = [| 4; 5; 6; 8 |];
    };
    {
      benchmark = "PF";
      description = "Particle Filter (Rodinia), no protection";
      routine = "particle_filter";
      objects = [ "xe" ];
      workload = (fun () -> Particle_filter.workload ());
      workload_at = (fun n -> Particle_filter.workload ~particles:n ());
      parallel_at = None;
      default_size = 16;
      sizes = [| 8; 12; 16; 24 |];
    };
    {
      benchmark = "ABFT_PF";
      description = "Particle Filter with ABFT on xe";
      routine = "particle_filter+verify";
      objects = [ "xe" ];
      workload = (fun () -> Particle_filter.workload ~abft:true ());
      workload_at =
        (fun n -> Particle_filter.workload ~particles:n ~abft:true ());
      parallel_at = None;
      default_size = 16;
      sizes = [| 8; 12; 16; 24 |];
    };
  ]

let all = table1 @ case_studies

let find name =
  let lname = String.lowercase_ascii name in
  List.find
    (fun e -> String.equal (String.lowercase_ascii e.benchmark) lname)
    all

let training_sizes e = [ e.sizes.(0); e.sizes.(1); e.sizes.(2) ]
let holdout_size e = e.sizes.(3)

let pp_table1 ppf () =
  Format.fprintf ppf "@[<v>%-8s %-55s %-30s %s@,%s@,"
    "Name" "Benchmark description" "Code segment" "Target data objects"
    (String.make 110 '-');
  List.iter
    (fun e ->
      Format.fprintf ppf "%-8s %-55s %-30s %s@," e.benchmark e.description
        e.routine
        (String.concat ", " e.objects))
    table1;
  Format.fprintf ppf "@]"
