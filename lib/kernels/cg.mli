(** NPB CG miniature: conjugate gradient with irregular memory access over
    a CSR sparse matrix (Table I: routine [conj_grad] in the main loop;
    target data objects [r] (f64 residual vector) and [colidx] (i32 column
    index array)). *)

val workload :
  ?n:int -> ?row_nnz:int -> ?iters:int -> ?seed:int -> ?tmr_colidx:bool ->
  unit -> Moard_inject.Workload.t
(** [n]: unknowns (default 18), [row_nnz]: off-diagonal entries per row
    (default 3), [iters]: CG iterations (default 4). The matrix is
    symmetric positive definite (diagonally dominant). Outputs: the final
    residual norm and the solution self-product; acceptance tolerates 1%
    relative deviation, the iterative solver's own fidelity notion.

    [tmr_colidx] replicates the vulnerable column-index array three times
    and majority-votes every access — the selective protection an aDVF
    analysis directs you to (the intro's motivating use case). *)

val parallel_workload :
  ?n:int -> ?row_nnz:int -> ?iters:int -> ?seed:int -> harts:int -> unit ->
  Moard_inject.Workload.t
(** SPMD port (no TMR variant): rows block-striped across harts, scalar
    reductions exchanged through a barrier-ordered partial-sum array. The
    sparse product's random-column reads of [p] make it genuinely shared
    state at [harts >= 2]. At [harts = 1] the consumption sites over the
    target objects replicate the serial port's exactly. Same matrix and
    right-hand side as [workload] for a given seed. *)
