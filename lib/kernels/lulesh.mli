(** LULESH miniature: the [CalcMonotonicQRegionForElems] routine (Table I;
    also the subject of the Fig. 6 validation and the Fig. 7 RFI
    comparison).

    A 1D region of elements with nodal coordinates. Per element the routine
    reads the velocity gradient [m_delv_zeta] and its neighbours, applies
    the monotonic limiter with boundary-condition branches driven by the
    integer flag array [m_elemBC], derives element scales from the
    coordinate arrays [m_x]/[m_y]/[m_z], and stores the artificial
    viscosity terms [qq]/[ql].

    Target data objects: [m_elemBC] (i32 flags), [m_delv_zeta] (f64), and
    the three equal-sized coordinate arrays [m_x], [m_y], [m_z] used by the
    paper's RFI study. *)

val workload : ?nelem:int -> ?seed:int -> unit -> Moard_inject.Workload.t
(** [nelem]: elements in the region (default 20). *)

val parallel_workload :
  ?nelem:int -> ?seed:int -> harts:int -> unit -> Moard_inject.Workload.t
(** SPMD port: elements block-striped across harts with the per-element
    body shared verbatim with the serial variant. Elements are mutually
    independent, so the port needs no barrier; neighbour reads of
    [m_delv_zeta] and the node-straddling coordinate reads make
    stripe-boundary cells the only shared state at [harts >= 2]. At
    [harts = 1] the consumption sites replicate the serial port's
    exactly. Same inputs as [workload] for a given seed. *)
