module Ast = Moard_lang.Ast

let ast ~n ~abft ~a0 ~b0 =
  (* With ABFT the working dimension includes the checksum row/column. *)
  let d = if abft then n + 1 else n in
  let dd = d * d in
  let neg1 = -1 in
  let open Moard_lang.Ast.Dsl in
  let at arr er ec = arr.%(Util.idx2 d er ec) in
  let set arr er ec e = Ast.Sstore (arr, Util.idx2 d er ec, e) in
  let encode =
    (* Fill A's checksum row (column sums) and B's checksum column. *)
    fn "encode"
      [
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at "Am" (v "r") (v "c") ];
            set "Am" (i n) (v "c") (v "s");
          ];
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at "Bm" (v "r") (v "c") ];
            set "Bm" (v "r") (i n) (v "s");
          ];
        ret_void;
      ]
  in
  let init_c =
    fn "init_c" [ for_ "t" (i 0) (i dd) [ ("C".%(v "t") <- f 0.0) ]; ret_void ]
  in
  let mm =
    (* Accumulation directly in C, as in the reference triple loop: every
       k-step is a read-modify-write of the product element. *)
    fn "mm"
      [
        for_ "r" (i 0) (i d)
          [
            for_ "k" (i 0) (i d)
              [
                flt_ "arK" (at "Am" (v "r") (v "k"));
                for_ "c" (i 0) (i d)
                  [
                    set "C" (v "r") (v "c")
                      (at "C" (v "r") (v "c")
                       + (v "arK" * at "Bm" (v "k") (v "c")));
                  ];
              ];
          ];
        ret_void;
      ]
  in
  (* Verification: a row and a column whose sums disagree with their
     checksums locate a single corrupted element; the checksum residue
     corrects it (Wu et al. [28]). *)
  let verify =
    fn "verify"
      [
        int_ "badr" (i neg1);
        for_ "r" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "c" (i 0) (i n) [ "s" <-- v "s" + at "C" (v "r") (v "c") ];
            when_
              (fabs_ (at "C" (v "r") (i n) - v "s") > f 1e-13)
              [ "badr" <-- v "r" ];
          ];
        int_ "badc" (i neg1);
        for_ "c" (i 0) (i n)
          [
            flt_ "s" (f 0.0);
            for_ "r" (i 0) (i n) [ "s" <-- v "s" + at "C" (v "r") (v "c") ];
            when_
              (fabs_ (at "C" (i n) (v "c") - v "s") > f 1e-13)
              [ "badc" <-- v "c" ];
          ];
        when_
          ((v "badr" >= i 0) && (v "badc" >= i 0))
          [
            (* Correct by recomputing the located element in the original
               accumulation order: bit-identical to the fault-free value. *)
            flt_ "s" (f 0.0);
            for_ "k" (i 0) (i d)
              [
                "s" <--
                v "s" + (at "Am" (v "badr") (v "k") * at "Bm" (v "k") (v "badc"));
              ];
            set "C" (v "badr") (v "badc") (v "s");
          ];
        ret_void;
      ]
  in
  let observe =
    (* The application outcome is the data part of the product itself
       (elementwise numerical integrity), plus a checksum for reporting. *)
    fn "observe"
      [
        flt_ "cs" (f 0.0);
        for_ "r" (i 0) (i n)
          [
            for_ "c" (i 0) (i n)
              [
                ("Cout".%(Util.idx2 n (v "r") (v "c")) <-
                 at "C" (v "r") (v "c"));
                "cs" <-- v "cs" + at "C" (v "r") (v "c");
              ];
          ];
        ("out".%(i 0) <- v "cs");
        ret_void;
      ]
  in
  let main_body =
    if abft then
      [ do_ (call "init_c" []); do_ (call "encode" []); do_ (call "mm" []);
        do_ (call "verify" []); do_ (call "observe" []); ret_void ]
    else
      [ do_ (call "init_c" []); do_ (call "mm" []); do_ (call "observe" []);
        ret_void ]
  in
  let main = fn "main" main_body in
  let pad m0 =
    (* Host matrices are n x n; embed into d x d working arrays. *)
    Array.init dd (fun t ->
        let r = Stdlib.( / ) t d and c = Stdlib.(mod) t d in
        if Stdlib.(r < n && c < n) then m0.(Stdlib.(r * n + c)) else 0.0)
  in

  {
    Ast.globals =
      [
        garr_f64_init "Am" (pad a0);
        garr_f64_init "Bm" (pad b0);
        garr_f64 "C" dd;
        garr_f64 "Cout" (Stdlib.( * ) n n);
        garr_f64 "out" 1;
      ];
    funs =
      (if abft then [ init_c; encode; mm; verify; observe; main ]
       else [ init_c; mm; observe; main ]);
  }

(* SPMD port of the unprotected kernel: every hart runs [main]; each phase
   block-decomposes the rows of C, so hart h owns rows [lo, hi) across
   init, accumulation and observation alike (consistent ownership keeps C
   hart-private — only Am/Bm, read by every hart, and the psum exchange
   are shared state). At one hart the decomposition is rows [0, d): the
   serial iteration order element for element, which is what makes the
   harts=1 aDVF differentially comparable to the serial port. The program
   text does not depend on the hart count — [hart_id]/[hart_count] are
   runtime intrinsics — so one program (and one program hash) serves every
   configuration. *)
let parallel_ast ~n ~a0 ~b0 =
  let d = n in
  let dd = d * d in
  let open Moard_lang.Ast.Dsl in
  let at arr er ec = arr.%(Util.idx2 d er ec) in
  let set arr er ec e = Ast.Sstore (arr, Util.idx2 d er ec, e) in
  let span =
    [
      int_ "me" hart_id;
      int_ "nh" hart_count;
      int_ "lo" (v "me" * ((i d + v "nh" - i 1) / v "nh"));
      int_ "hi" (v "lo" + ((i d + v "nh" - i 1) / v "nh"));
      when_ (v "hi" > i d) [ "hi" <-- i d ];
    ]
  in
  let init_c =
    fn "init_c"
      (span
      @ [
          for_ "r" (v "lo") (v "hi")
            [ for_ "c" (i 0) (i d) [ set "C" (v "r") (v "c") (f 0.0) ] ];
          ret_void;
        ])
  in
  let mm =
    fn "mm"
      (span
      @ [
          for_ "r" (v "lo") (v "hi")
            [
              for_ "k" (i 0) (i d)
                [
                  flt_ "arK" (at "Am" (v "r") (v "k"));
                  for_ "c" (i 0) (i d)
                    [
                      set "C" (v "r") (v "c")
                        (at "C" (v "r") (v "c")
                         + (v "arK" * at "Bm" (v "k") (v "c")));
                    ];
                ];
            ];
          ret_void;
        ])
  in
  let observe =
    (* Per-element observation is identical to the serial port (copy out,
       fold into a running checksum); only the cross-hart combination of
       the per-hart partial checksums is new, and it never consumes C. *)
    fn "observe"
      (span
      @ [
          flt_ "cs" (f 0.0);
          for_ "r" (v "lo") (v "hi")
            [
              for_ "c" (i 0) (i n)
                [
                  ("Cout".%(Util.idx2 n (v "r") (v "c")) <-
                   at "C" (v "r") (v "c"));
                  "cs" <-- v "cs" + at "C" (v "r") (v "c");
                ];
            ];
          ("psum".%(v "me") <- v "cs");
          barrier_;
          when_
            (v "me" == i 0)
            [
              flt_ "tot" (f 0.0);
              for_ "h" (i 0) (v "nh") [ "tot" <-- v "tot" + "psum".%(v "h") ];
              ("out".%(i 0) <- v "tot");
            ];
          ret_void;
        ])
  in
  let main =
    fn "main"
      [
        do_ (call "init_c" []);
        barrier_;
        do_ (call "mm" []);
        barrier_;
        do_ (call "observe" []);
        ret_void;
      ]
  in
  {
    Ast.globals =
      [
        garr_f64_init "Am" a0;
        garr_f64_init "Bm" b0;
        garr_f64 "C" dd;
        garr_f64 "Cout" (Stdlib.( * ) n n);
        garr_f64 "out" 1;
        garr_f64 "psum" 64;
      ];
    funs = [ init_c; mm; observe; main ];
  }

let parallel_workload ?(n = 6) ?(seed = 61) ~harts () =
  if n < 2 then invalid_arg "Abft_mm.parallel_workload: n";
  let rng = Util.Rng.make seed in
  let a0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let b0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let program = Moard_lang.Compile.program (parallel_ast ~n ~a0 ~b0) in
  Moard_inject.Workload.make ~name:"MM" ~program
    ~segment:[ "mm"; "observe" ] ~targets:[ "C" ]
    ~outputs:[ "Cout"; "out" ]
    ~accept:(fun ~golden:_ ~faulty:_ -> false)
    ~harts ()

let workload ?(n = 6) ?(abft = false) ?(seed = 61) () =
  if n < 2 then invalid_arg "Abft_mm.workload: n";
  let rng = Util.Rng.make seed in
  let a0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let b0 = Array.init (n * n) (fun _ -> 0.5 +. Util.Rng.float rng 1.0) in
  let program = Moard_lang.Compile.program (ast ~n ~abft ~a0 ~b0) in
  let segment =
    if abft then [ "mm"; "verify"; "observe" ] else [ "mm"; "observe" ]
  in
  (* Matrix multiplication's correctness notion is precise numerical
     integrity (paper §II-A): only a bit-identical product is correct, so
     acceptance adds nothing beyond the numerically-same check. *)
  Moard_inject.Workload.make
    ~name:(if abft then "ABFT_MM" else "MM")
    ~program ~segment ~targets:[ "C" ] ~outputs:[ "Cout"; "out" ]
    ~accept:(fun ~golden:_ ~faulty:_ -> false)
    ()
