(** The benchmark inventory — Table I of the paper, plus the §VI case
    studies. Each entry names the evaluated routine and the target data
    objects, and builds the workload at its default miniature size or at
    any valid size of a uniform size knob. *)

type entry = {
  benchmark : string;
  description : string;
  routine : string;           (** the code segment of Table I *)
  objects : string list;      (** target data objects *)
  workload : unit -> Moard_inject.Workload.t;
      (** the historical default-size workload;
          [workload () = workload_at default_size] *)
  workload_at : int -> Moard_inject.Workload.t;
      (** build the workload at a given input size. The size maps onto the
          kernel's own primary dimension (matrix order, grid side, element
          count, particle count); every other knob keeps its default.
          @raise Invalid_argument on a size the kernel rejects (FT needs a
          power of two >= 4, MG divisibility by [2^(levels-1)], SP
          [n >= 5], ...). *)
  parallel_at : (harts:int -> int -> Moard_inject.Workload.t) option;
      (** build the SPMD port of the kernel at a given input size for a
          given hart count, when one exists (MM, CG, LULESH). The port's
          program text does not depend on [harts] — decomposition happens
          at runtime through the [hart_id]/[hart_count] intrinsics — and
          at [harts = 1] its consumption sites over the target objects
          replicate the serial kernel's exactly. [None] for kernels
          without a parallel port. *)
  default_size : int;  (** the size [workload] builds at *)
  sizes : int array;
      (** the canonical cross-size ladder for the aDVF predictor: three
          training sizes in ascending order followed by the holdout size
          where statistical ground truth is still computable. All four are
          valid [workload_at] inputs. *)
}

val table1 : entry list
(** CG, MG, FT, BT, SP, LU, LULESH, AMG — in the paper's order. *)

val case_studies : entry list
(** MM, ABFT_MM, PF, ABFT_PF (§VI). *)

val all : entry list

val find : string -> entry
(** Look up by benchmark name (case-insensitive). @raise Not_found *)

val training_sizes : entry -> int list
(** The first three elements of [sizes]. *)

val holdout_size : entry -> int
(** The last element of [sizes]. *)

val pp_table1 : Format.formatter -> unit -> unit
(** Render Table I. *)
