module Ast = Moard_lang.Ast

let zeta_m_symm = 1
let zeta_p_symm = 2

(* Per-element body of the region loop, shared verbatim between the serial
   and the SPMD variant so the dynamic consumption sites over one element
   are identical in both. *)
let elem_body () =
  let monoq_limiter = 2.0 and max_slope = 1.0 in
  let qlc = 0.5 and qqc = 2.0 in
  let open Moard_lang.Ast.Dsl in
  [
    int_ "bcmask" ("m_elemBC".%(v "ie"));
    flt_ "dvc" ("m_delv_zeta".%(v "ie"));
    flt_ "norm" (f 1.0 / (v "dvc" + f 1e-12));
    (* neighbour gradients, symmetric BCs folded in via the flag
       bits exactly like the bcMask switches of LULESH *)
    flt_ "dvm" (f 0.0);
    if_
      ((v "bcmask" land i zeta_m_symm) != i 0)
      [ "dvm" <-- v "dvc" ]
      [ "dvm" <-- "m_delv_zeta".%(v "ie" - i 1) ];
    flt_ "dvp" (f 0.0);
    if_
      ((v "bcmask" land i zeta_p_symm) != i 0)
      [ "dvp" <-- v "dvc" ]
      [ "dvp" <-- "m_delv_zeta".%(v "ie" + i 1) ];
    (* monotonic limiter *)
    flt_ "phi" (f 0.5 * (v "dvm" + v "dvp") * v "norm");
    ("dvm" <-- v "dvm" * v "norm");
    ("dvp" <-- v "dvp" * v "norm");
    ("phi" <-- fmin_ (v "phi") (v "dvm" * f monoq_limiter));
    ("phi" <-- fmin_ (v "phi") (v "dvp" * f monoq_limiter));
    ("phi" <-- fmax_ (v "phi") (f 0.0));
    ("phi" <-- fmin_ (v "phi") (f max_slope));
    (* element scale from the coordinates *)
    flt_ "delx" ("m_x".%(v "ie" + i 1) - "m_x".%(v "ie"));
    flt_ "dely" ("m_y".%(v "ie" + i 1) - "m_y".%(v "ie"));
    flt_ "delz" ("m_z".%(v "ie" + i 1) - "m_z".%(v "ie"));
    flt_ "vol"
      (sqrt_
         ((v "delx" * v "delx") + (v "dely" * v "dely")
          + (v "delz" * v "delz"))
       + f 1e-12);
    (* artificial viscosity; compression only *)
    if_
      (v "dvc" >= f 0.0)
      [ ("qq".%(v "ie") <- f 0.0); ("ql".%(v "ie") <- f 0.0) ]
      [
        flt_ "dvel" (v "dvc" * v "vol");
        ("ql".%(v "ie") <-
         f (-.qlc) * v "dvel" * (f 1.0 - v "phi"));
        ("qq".%(v "ie") <-
         f qqc * v "dvel" * v "dvel" * (f 1.0 - (v "phi" * v "phi")));
      ];
  ]

let globals ~nelem ~coords ~delv ~bc =
  let open Moard_lang.Ast.Dsl in
  let x, y, z = coords in
  [
    garr_f64_init "m_x" x;
    garr_f64_init "m_y" y;
    garr_f64_init "m_z" z;
    garr_f64_init "m_delv_zeta" delv;
    garr_i32_init "m_elemBC" bc;
    garr_f64 "qq" nelem;
    garr_f64 "ql" nelem;
  ]

let ast ~nelem ~coords ~delv ~bc =
  let open Moard_lang.Ast.Dsl in
  let calc =
    fn "CalcMonotonicQRegionForElems"
      [ for_ "ie" (i 0) (i nelem) (elem_body ()); ret_void ]
  in
  let main =
    fn "main" [ do_ (call "CalcMonotonicQRegionForElems" []); ret_void ]
  in
  { Ast.globals = globals ~nelem ~coords ~delv ~bc; funs = [ calc; main ] }

(* SPMD port: elements are block-striped across harts. Each element's
   computation is independent (qq/ql writes stay inside the owner's
   stripe), so no barrier is needed; the neighbour reads of
   [m_delv_zeta] and the node-straddling coordinate reads make the
   stripe-boundary cells the only shared state at [harts >= 2]. At
   [harts = 1] the stripe is elements [0, nelem): the serial iteration
   order, element for element. *)
let parallel_ast ~nelem ~coords ~delv ~bc =
  let open Moard_lang.Ast.Dsl in
  let span =
    [
      int_ "me" hart_id;
      int_ "nh" hart_count;
      int_ "lo" (v "me" * ((i nelem + v "nh" - i 1) / v "nh"));
      int_ "hi" (v "lo" + ((i nelem + v "nh" - i 1) / v "nh"));
      when_ (v "hi" > i nelem) [ "hi" <-- i nelem ];
    ]
  in
  let calc =
    fn "CalcMonotonicQRegionForElems"
      (span @ [ for_ "ie" (v "lo") (v "hi") (elem_body ()); ret_void ])
  in
  let main =
    fn "main" [ do_ (call "CalcMonotonicQRegionForElems" []); ret_void ]
  in
  { Ast.globals = globals ~nelem ~coords ~delv ~bc; funs = [ calc; main ] }

let inputs ~nelem ~seed =
  let rng = Util.Rng.make seed in
  let nodes = nelem + 1 in
  let coord () =
    Array.init nodes (fun j -> float_of_int j +. Util.Rng.float rng 0.4)
  in
  let coords = (coord (), coord (), coord ()) in
  (* Mostly compressing elements so the viscosity branch is exercised. *)
  let delv =
    Array.init nelem (fun _ -> -0.5 +. (Util.Rng.float rng 0.7 -. 0.1))
  in
  let bc =
    Array.init nelem (fun ie ->
        if ie = 0 then Int32.of_int zeta_m_symm
        else if ie = nelem - 1 then Int32.of_int zeta_p_symm
        else 0l)
  in
  (coords, delv, bc)

let make_workload program ?harts () =
  Moard_inject.Workload.make ~name:"LULESH" ~program
    ~segment:[ "CalcMonotonicQRegionForElems" ]
    ~targets:[ "m_elemBC"; "m_delv_zeta"; "m_x"; "m_y"; "m_z" ]
    ~outputs:[ "qq"; "ql" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-2)
    ?harts ()

let workload ?(nelem = 20) ?(seed = 47) () =
  if nelem < 4 then invalid_arg "Lulesh.workload: nelem";
  let coords, delv, bc = inputs ~nelem ~seed in
  let program = Moard_lang.Compile.program (ast ~nelem ~coords ~delv ~bc) in
  make_workload program ()

let parallel_workload ?(nelem = 20) ?(seed = 47) ~harts () =
  if nelem < 4 then invalid_arg "Lulesh.parallel_workload: nelem";
  let coords, delv, bc = inputs ~nelem ~seed in
  let program =
    Moard_lang.Compile.program (parallel_ast ~nelem ~coords ~delv ~bc)
  in
  make_workload program ~harts ()
