(** Case study (paper §VI, Fig. 8): general matrix multiplication
    C = A x B, with and without the checksum-based ABFT of Wu et al. [28].

    Without ABFT, [C] is the plain n x n product. With ABFT, the matrices
    are encoded with an extra checksum row/column (A gets column sums,
    B gets row sums), the full (n+1) x (n+1) product is computed, and a
    verification phase compares each row and column of C against its
    checksum, locating and correcting a single corrupted element — the
    overwrite-during-propagation masking the paper measures. The target
    data object is [C] in both variants. *)

val workload : ?n:int -> ?abft:bool -> ?seed:int -> unit ->
  Moard_inject.Workload.t
(** [n]: matrix dimension (default 6); [abft] (default false). *)

val parallel_workload :
  ?n:int -> ?seed:int -> harts:int -> unit -> Moard_inject.Workload.t
(** SPMD port of the unprotected variant: rows of [C] are block-striped
    across harts in every phase, so [C] stays hart-private while [Am]/[Bm]
    (read by all harts) and the checksum-exchange array [psum] are shared.
    At [harts = 1] the dynamic consumption sites over [C] replicate the
    serial port's exactly. Same inputs as [workload] for a given seed. *)
