module Ast = Moard_lang.Ast

(* Symmetric positive definite CSR matrix: tridiagonal couplings plus
   [row_nnz] random symmetric off-diagonals, diagonally dominant. *)
let build_matrix ~n ~row_nnz ~seed =
  let rng = Util.Rng.make seed in
  let cols = Array.make n [] in
  let add r c v =
    if not (List.mem_assoc c cols.(r)) then cols.(r) <- (c, v) :: cols.(r)
  in
  for j = 0 to n - 1 do
    if j > 0 then add j (j - 1) (-1.0);
    if j < n - 1 then add j (j + 1) (-1.0)
  done;
  for _ = 1 to row_nnz * n / 2 do
    let r = Util.Rng.int rng n and c = Util.Rng.int rng n in
    if r <> c then begin
      let v = -.Util.Rng.float rng 0.5 in
      add r c v;
      add c r v
    end
  done;
  (* Diagonal dominance makes the matrix SPD. *)
  for j = 0 to n - 1 do
    let off = List.fold_left (fun s (_, v) -> s +. Float.abs v) 0.0 cols.(j) in
    add j j (off +. 1.0 +. Util.Rng.float rng 1.0)
  done;
  let rowstr = Array.make (n + 1) 0L in
  let colidx = ref [] and vals = ref [] in
  let pos = ref 0 in
  for j = 0 to n - 1 do
    rowstr.(j) <- Int64.of_int !pos;
    List.iter
      (fun (c, v) ->
        colidx := Int32.of_int c :: !colidx;
        vals := v :: !vals;
        incr pos)
      (List.sort compare cols.(j))
  done;
  rowstr.(n) <- Int64.of_int !pos;
  ( rowstr,
    Array.of_list (List.rev !colidx),
    Array.of_list (List.rev !vals) )

let ast ~n ~iters ~tmr ~rowstr ~colidx ~vals ~x0 =
  let open Moard_lang.Ast.Dsl in
  (* With TMR protection, every use of colidx reads three replicas and
     takes a bitwise majority vote, correcting any single-copy fault. *)
  let voted_index ek =
    if tmr then
      let a = "colidx".%(ek)
      and b = "colidx_b".%(ek)
      and c = "colidx_c".%(ek) in
      (a land b) lor (a land c) lor (b land c)
    else "colidx".%(ek)
  in
  let dot dst va vb =
    [
      (dst <-- f 0.0);
      for_ "j" (i 0) (i n) [ dst <-- v dst + (va.%(v "j") * vb.%(v "j")) ];
    ]
  in
  let conj_grad =
    fn "conj_grad"
      ([
         int_ "it" (i 0);
         flt_ "rho" (f 0.0);
         flt_ "rho0" (f 0.0);
         flt_ "d" (f 0.0);
         flt_ "alpha" (f 0.0);
         flt_ "beta" (f 0.0);
         flt_ "sum" (f 0.0);
         (* z = 0, r = x, p = r, rho = r.r *)
         for_ "j" (i 0) (i n)
           [
             ("z".%(v "j") <- f 0.0);
             ("r".%(v "j") <- "x".%(v "j"));
             ("p".%(v "j") <- "x".%(v "j"));
             "rho" <-- v "rho" + ("x".%(v "j") * "x".%(v "j"));
           ];
         while_
           (v "it" < i iters)
           ([
              (* q = A p *)
              for_ "j" (i 0) (i n)
                [
                  ("sum" <-- f 0.0);
                  for_ "k"
                    ("rowstr".%(v "j"))
                    ("rowstr".%(v "j" + i 1))
                    [
                      "sum" <--
                      v "sum" + ("a".%(v "k") * "p".%(voted_index (v "k")));
                    ];
                  ("q".%(v "j") <- v "sum");
                ];
            ]
           @ dot "d" "p" "q"
           @ [
               ("alpha" <-- v "rho" / v "d");
               for_ "j" (i 0) (i n)
                 [
                   ("z".%(v "j") <- "z".%(v "j") + (v "alpha" * "p".%(v "j")));
                   ("r".%(v "j") <- "r".%(v "j") - (v "alpha" * "q".%(v "j")));
                 ];
               ("rho0" <-- v "rho");
             ]
           @ dot "rho" "r" "r"
           @ [
               ("beta" <-- v "rho" / v "rho0");
               for_ "j" (i 0) (i n)
                 [ ("p".%(v "j") <- "r".%(v "j") + (v "beta" * "p".%(v "j"))) ];
               ("it" <-- v "it" + i 1);
             ]);
       ]
      @ dot "d" "z" "z"
      @ [
          ("out".%(i 0) <- sqrt_ (v "rho"));
          ("out".%(i 1) <- v "d");
          ret_void;
        ])
  in
  let main = fn "main" [ do_ (call "conj_grad" []); ret_void ] in
  {
    Ast.globals =
      ([
         garr_i64_init "rowstr" rowstr;
         garr_i32_init "colidx" colidx;
       ]
      @ (if tmr then
           [ garr_i32_init "colidx_b" colidx; garr_i32_init "colidx_c" colidx ]
         else [])
      @ [
          garr_f64_init "a" vals;
          garr_f64_init "x" x0;
          garr_f64 "z" n;
          garr_f64 "p" n;
          garr_f64 "q" n;
          garr_f64 "r" n;
          garr_f64 "out" 2;
        ]);
    funs = [ conj_grad; main ];
  }

(* SPMD port: rows are block-striped across harts, so [z]/[r]/[q] and each
   hart's stripe of [p] are written by exactly one hart, while the sparse
   product reads [p] at random columns — genuinely shared state, like
   [a]/[colidx]/[rowstr]/[x] which every stripe indexes read-only. The
   scalar reductions (rho, d) go through [psum]: each hart publishes its
   partial, meets the quorum at a barrier, then every hart folds the
   partials in hart order so all copies of the scalar are bit-identical.
   The trailing barrier of each reduction keeps a fast hart's next partial
   from overwriting a slot a slow hart still reads; the end-of-iteration
   barrier orders the [p] update before the next sparse product. At
   [harts = 1] the stripe is rows [0, n) and the consumption sites over
   [r] and [colidx] replicate the serial port's exactly. *)
let parallel_ast ~n ~iters ~rowstr ~colidx ~vals ~x0 =
  let open Moard_lang.Ast.Dsl in
  let span =
    [
      int_ "me" hart_id;
      int_ "nh" hart_count;
      int_ "lo" (v "me" * ((i n + v "nh" - i 1) / v "nh"));
      int_ "hi" (v "lo" + ((i n + v "nh" - i 1) / v "nh"));
      when_ (v "hi" > i n) [ "hi" <-- i n ];
    ]
  in
  (* Reduce the per-hart partial already accumulated in [acc] into [dst]
     on every hart. *)
  let reduce dst =
    [
      ("psum".%(v "me") <- v "acc");
      barrier_;
      flt_ "tot" (f 0.0);
      for_ "h" (i 0) (v "nh") [ "tot" <-- v "tot" + "psum".%(v "h") ];
      (dst <-- v "tot");
      barrier_;
    ]
  in
  let dot dst va vb =
    [
      ("acc" <-- f 0.0);
      for_ "j" (v "lo") (v "hi")
        [ "acc" <-- v "acc" + (va.%(v "j") * vb.%(v "j")) ];
    ]
    @ reduce dst
  in
  let conj_grad =
    fn "conj_grad"
      (span
      @ [
          int_ "it" (i 0);
          flt_ "rho" (f 0.0);
          flt_ "rho0" (f 0.0);
          flt_ "d" (f 0.0);
          flt_ "alpha" (f 0.0);
          flt_ "beta" (f 0.0);
          flt_ "sum" (f 0.0);
          flt_ "acc" (f 0.0);
          (* z = 0, r = x, p = r, rho = r.r *)
          for_ "j" (v "lo") (v "hi")
            [
              ("z".%(v "j") <- f 0.0);
              ("r".%(v "j") <- "x".%(v "j"));
              ("p".%(v "j") <- "x".%(v "j"));
              "acc" <-- v "acc" + ("x".%(v "j") * "x".%(v "j"));
            ];
        ]
      @ reduce "rho"
      @ [
          while_
            (v "it" < i iters)
            ([
               (* q = A p *)
               for_ "j" (v "lo") (v "hi")
                 [
                   ("sum" <-- f 0.0);
                   for_ "k"
                     ("rowstr".%(v "j"))
                     ("rowstr".%(v "j" + i 1))
                     [
                       "sum" <--
                       v "sum" + ("a".%(v "k") * "p".%("colidx".%(v "k")));
                     ];
                   ("q".%(v "j") <- v "sum");
                 ];
             ]
            @ dot "d" "p" "q"
            @ [
                ("alpha" <-- v "rho" / v "d");
                for_ "j" (v "lo") (v "hi")
                  [
                    ("z".%(v "j") <- "z".%(v "j") + (v "alpha" * "p".%(v "j")));
                    ("r".%(v "j") <- "r".%(v "j") - (v "alpha" * "q".%(v "j")));
                  ];
                ("rho0" <-- v "rho");
              ]
            @ dot "rho" "r" "r"
            @ [
                ("beta" <-- v "rho" / v "rho0");
                for_ "j" (v "lo") (v "hi")
                  [ ("p".%(v "j") <- "r".%(v "j") + (v "beta" * "p".%(v "j"))) ];
                ("it" <-- v "it" + i 1);
                (* Order this p update before the next sparse product's
                   cross-stripe reads of p. *)
                barrier_;
              ]);
        ]
      @ dot "d" "z" "z"
      @ [
          when_
            (v "me" == i 0)
            [ ("out".%(i 0) <- sqrt_ (v "rho")); ("out".%(i 1) <- v "d") ];
          ret_void;
        ])
  in
  let main = fn "main" [ do_ (call "conj_grad" []); ret_void ] in
  {
    Ast.globals =
      [
        garr_i64_init "rowstr" rowstr;
        garr_i32_init "colidx" colidx;
        garr_f64_init "a" vals;
        garr_f64_init "x" x0;
        garr_f64 "z" n;
        garr_f64 "p" n;
        garr_f64 "q" n;
        garr_f64 "r" n;
        garr_f64 "out" 2;
        garr_f64 "psum" 64;
      ];
    funs = [ conj_grad; main ];
  }

let parallel_workload ?(n = 18) ?(row_nnz = 3) ?(iters = 4) ?(seed = 42)
    ~harts () =
  let rowstr, colidx, vals = build_matrix ~n ~row_nnz ~seed in
  let rng = Util.Rng.make (seed + 17) in
  let x0 = Array.init n (fun _ -> 1.0 +. Util.Rng.float rng 1.0) in
  let program =
    Moard_lang.Compile.program
      (parallel_ast ~n ~iters ~rowstr ~colidx ~vals ~x0)
  in
  Moard_inject.Workload.make ~name:"CG" ~program ~segment:[ "conj_grad" ]
    ~targets:[ "r"; "colidx" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-2)
    ~harts ()

let workload ?(n = 18) ?(row_nnz = 3) ?(iters = 4) ?(seed = 42)
    ?(tmr_colidx = false) () =
  let rowstr, colidx, vals = build_matrix ~n ~row_nnz ~seed in
  let rng = Util.Rng.make (seed + 17) in
  let x0 = Array.init n (fun _ -> 1.0 +. Util.Rng.float rng 1.0) in
  let program =
    Moard_lang.Compile.program
      (ast ~n ~iters ~tmr:tmr_colidx ~rowstr ~colidx ~vals ~x0)
  in
  Moard_inject.Workload.make
    ~name:(if tmr_colidx then "TMR_CG" else "CG")
    ~program ~segment:[ "conj_grad" ]
    ~targets:[ "r"; "colidx" ] ~outputs:[ "out" ]
    ~accept:(Moard_inject.Workload.rel_err_accept 1e-2)
    ()
