module Advf = Moard_core.Advf
module Hart_split = Moard_core.Hart_split

type row = {
  object_name : string;
  serial : Advf.report;
  par1 : Advf.report;
  parn : Hart_split.t;
}

type t = {
  benchmark : string;
  harts : int;
  cells : int;         (* distinct cells touched on the harts=N tape *)
  shared_cells : int;  (* of which touched by two or more harts *)
  rows : row list;
}

let fl x = Printf.sprintf "%.17g" x

(* Everything here is deterministic for sequential analyses on fresh
   contexts, so the whole payload is byte-stable — the parallel-smoke CI
   job cmp-diffs two independently computed reports. *)
let json t =
  let b = Buffer.create 1024 in
  let field ?(last = false) ?(indent = 2) k v =
    Buffer.add_string b
      (Printf.sprintf "%s%S: %s%s\n" (String.make indent ' ') k v
         (if last then "" else ","))
  in
  let summary ?(last = false) ?(indent = 4) k (r : Advf.report) =
    field ~last ~indent k
      (Printf.sprintf "{ \"sites\": %d, \"advf\": %s, \"masking_events\": %s }"
         r.Advf.involvements (fl r.Advf.advf) (fl r.Advf.masking_events))
  in
  Buffer.add_string b "{\n";
  field "schema" "\"moard-parallel-report-v1\"";
  field "benchmark" (Printf.sprintf "%S" t.benchmark);
  field "harts" (string_of_int t.harts);
  field "cells" (string_of_int t.cells);
  field "shared_cells" (string_of_int t.shared_cells);
  Buffer.add_string b "  \"objects\": [\n";
  let nrows = List.length t.rows in
  List.iteri
    (fun i row ->
      Buffer.add_string b "   {\n";
      field ~indent:4 "object" (Printf.sprintf "%S" row.object_name);
      summary "serial" row.serial;
      summary "parallel_1" row.par1;
      field ~indent:4 "shared_sites"
        (string_of_int row.parn.Hart_split.shared_sites);
      (match row.parn.Hart_split.shared with
      | Some r -> summary "parallel_n_shared" r
      | None -> ());
      (match row.parn.Hart_split.private_ with
      | Some r -> summary "parallel_n_private" r
      | None -> ());
      summary ~last:true "parallel_n" row.parn.Hart_split.total;
      Buffer.add_string b
        (if i = nrows - 1 then "   }\n" else "   },\n"))
    t.rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: serial vs %d-hart SPMD port (%d of %d touched cells shared)@,"
    t.benchmark t.harts t.shared_cells t.cells;
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %12s  %s@,%s@," "object"
    "serial" "parallel@1" "parallel@N" "shared" "private" "shared sites"
    (String.make 92 '-');
  let opt = function
    | None -> "-"
    | Some (r : Advf.report) -> Printf.sprintf "%.4f" r.Advf.advf
  in
  List.iter
    (fun row ->
      Format.fprintf ppf "%-12s %10.4f %12.4f %12.4f %12s %12s  %d/%d@,"
        row.object_name row.serial.Advf.advf row.par1.Advf.advf
        row.parn.Hart_split.total.Advf.advf
        (opt row.parn.Hart_split.shared)
        (opt row.parn.Hart_split.private_)
        row.parn.Hart_split.shared_sites row.parn.Hart_split.sites)
    t.rows;
  Format.fprintf ppf "@]"
