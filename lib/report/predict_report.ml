module Predict = Moard_predict.Predict

(* Deterministic float rendering: shortest-exact is locale-free and
   round-trips, so stable reports are byte-comparable. *)
let fl x = Printf.sprintf "%.17g" x

let pairs ps =
  String.concat ", "
    (List.map (fun (size, n) -> Printf.sprintf "[%d, %d]" size n) ps)

let buf_stratum b (s : Predict.stratum_prediction) =
  let cls name (c : Predict.class_prediction) =
    Printf.sprintf
      "\"%s\": %s, \"%s_lo\": %s, \"%s_hi\": %s" name (fl c.Predict.rate)
      name (fl c.Predict.interval.Moard_stats.Confidence.lo) name
      (fl c.Predict.interval.Moard_stats.Confidence.hi)
  in
  Buffer.add_string b
    (Printf.sprintf
       "    { \"stratum\": %S, \"counts\": [%s], \"samples\": %d, \
        \"successes\": %d, \"predicted_count\": %s, \"growth\": %S, \
        \"exponent\": %s, \"weight\": %s,\n      %s,\n      %s,\n      %s }"
       s.Predict.label (pairs s.Predict.counts) s.Predict.samples
       s.Predict.successes
       (fl s.Predict.predicted_count)
       s.Predict.growth
       (fl s.Predict.exponent)
       (fl s.Predict.weight)
       (cls "masked" s.Predict.masked)
       (cls "sdc" s.Predict.sdc)
       (cls "crashed" s.Predict.crashed))

let json_body b ?perf (p : Predict.t) =
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"moard-predict-report-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"workload\": %S,\n" p.Predict.workload_name);
  Buffer.add_string b (Printf.sprintf "  \"object\": %S,\n" p.Predict.object_name);
  (* unlike the campaign report this schema has no pre-error-model
     payloads to stay byte-identical to, so the model is always emitted *)
  Buffer.add_string b
    (Printf.sprintf "  \"error_model\": %S,\n"
       (Moard_bits.Errmodel.to_string p.Predict.model));
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" p.Predict.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"confidence\": %s,\n" (fl p.Predict.confidence));
  Buffer.add_string b
    (Printf.sprintf "  \"ci_width_target\": %s,\n" (fl p.Predict.ci_width));
  Buffer.add_string b
    (Printf.sprintf "  \"max_samples\": %d,\n" p.Predict.max_samples);
  Buffer.add_string b
    (Printf.sprintf "  \"training_sizes\": [%s],\n"
       (String.concat ", " (List.map string_of_int p.Predict.sizes)));
  Buffer.add_string b (Printf.sprintf "  \"target\": %d,\n" p.Predict.target);
  Buffer.add_string b
    (Printf.sprintf "  \"populations\": [%s],\n" (pairs p.Predict.populations));
  Buffer.add_string b
    (Printf.sprintf "  \"predicted_population\": %s,\n"
       (fl p.Predict.predicted_population));
  Buffer.add_string b (Printf.sprintf "  \"samples\": %d,\n" p.Predict.samples);
  Buffer.add_string b (Printf.sprintf "  \"runs\": %d,\n" p.Predict.runs);
  Buffer.add_string b
    (Printf.sprintf "  \"cache_hits\": %d,\n" p.Predict.cache_hits);
  Buffer.add_string b
    (Printf.sprintf "  \"unobserved_weight\": %s,\n"
       (fl p.Predict.unobserved_weight));
  (match perf with
  | None -> ()
  | Some () ->
    Buffer.add_string b
      (Printf.sprintf "  \"fit_seconds\": %s,\n" (fl p.Predict.fit_seconds)));
  let metric name v (i : Moard_stats.Confidence.interval) =
    Buffer.add_string b (Printf.sprintf "  \"%s\": %s,\n" name (fl v));
    Buffer.add_string b
      (Printf.sprintf "  \"%s_lo\": %s,\n" name (fl i.Moard_stats.Confidence.lo));
    Buffer.add_string b
      (Printf.sprintf "  \"%s_hi\": %s,\n" name (fl i.Moard_stats.Confidence.hi))
  in
  metric "advf" p.Predict.advf p.Predict.advf_ci;
  metric "sdc" p.Predict.sdc p.Predict.sdc_ci;
  metric "crashed" p.Predict.crashed p.Predict.crashed_ci;
  let strata =
    Array.to_list p.Predict.strata
    |> List.filter (fun (s : Predict.stratum_prediction) ->
           s.Predict.samples > 0 || s.Predict.predicted_count > 0.0)
    |> List.map (fun s ->
           let sb = Buffer.create 512 in
           buf_stratum sb s;
           Buffer.contents sb)
  in
  Buffer.add_string b
    (Printf.sprintf "  \"strata\": [\n%s\n  ]\n" (String.concat ",\n" strata));
  Buffer.add_string b "}\n"

let stable_json p =
  let b = Buffer.create 2048 in
  json_body b p;
  Buffer.contents b

let json p =
  let b = Buffer.create 2048 in
  json_body b ~perf:() p;
  Buffer.contents b

let pp ppf (p : Predict.t) =
  Format.fprintf ppf
    "predict %s/%s%s at size %d from sizes %s (seed %d, %g%% confidence)@\n"
    p.Predict.workload_name p.Predict.object_name
    (if p.Predict.model <> Moard_bits.Errmodel.Single_bit then
       " [" ^ Moard_bits.Errmodel.to_string p.Predict.model ^ "]"
     else "")
    p.Predict.target
    (String.concat "," (List.map string_of_int p.Predict.sizes))
    p.Predict.seed
    (100.0 *. p.Predict.confidence);
  Format.fprintf ppf "@\naDVF (masked): %.4f in [%.4f, %.4f]@\n" p.Predict.advf
    p.Predict.advf_ci.Moard_stats.Confidence.lo
    p.Predict.advf_ci.Moard_stats.Confidence.hi;
  Format.fprintf ppf "  %s@\n"
    (Chart.whisker ~width:40 ~center:p.Predict.advf
       ~margin:
         (0.5
         *. (p.Predict.advf_ci.Moard_stats.Confidence.hi
            -. p.Predict.advf_ci.Moard_stats.Confidence.lo))
       ());
  Format.fprintf ppf "SDC: %.4f in [%.4f, %.4f]; crash: %.4f in [%.4f, %.4f]@\n"
    p.Predict.sdc p.Predict.sdc_ci.Moard_stats.Confidence.lo
    p.Predict.sdc_ci.Moard_stats.Confidence.hi p.Predict.crashed
    p.Predict.crashed_ci.Moard_stats.Confidence.lo
    p.Predict.crashed_ci.Moard_stats.Confidence.hi;
  Format.fprintf ppf
    "predicted population %.0f (trained on %s); %d samples, %d runs, %d \
     cache hits; unobserved weight %.4f@\n"
    p.Predict.predicted_population
    (String.concat ", "
       (List.map
          (fun (size, n) -> Printf.sprintf "%d@%d" n size)
          p.Predict.populations))
    p.Predict.samples p.Predict.runs p.Predict.cache_hits
    p.Predict.unobserved_weight;
  Format.fprintf ppf "@\n%-22s %9s %7s %-12s %8s  %s@\n" "stratum" "predicted"
    "weight" "growth" "masked" "interval";
  Array.iter
    (fun (s : Predict.stratum_prediction) ->
      if s.Predict.samples > 0 || s.Predict.predicted_count > 0.0 then
        Format.fprintf ppf "%-22s %9.1f %7.4f %-12s %8.4f  [%.4f, %.4f]@\n"
          s.Predict.label s.Predict.predicted_count s.Predict.weight
          (Printf.sprintf "%s^%.2f" s.Predict.growth s.Predict.exponent)
          s.Predict.masked.Predict.rate
          s.Predict.masked.Predict.interval.Moard_stats.Confidence.lo
          s.Predict.masked.Predict.interval.Moard_stats.Confidence.hi)
    p.Predict.strata;
  Format.fprintf ppf "@\nfit+predict wall: %.3fs@\n" p.Predict.fit_seconds
