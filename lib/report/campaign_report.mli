(** Rendering of campaign-engine results: machine-readable JSON and the
    human report with interval whiskers. *)

val stable_json : Moard_campaign.Engine.result -> string
(** The deterministic portion of a result as JSON: estimates, intervals,
    sample/run/cache counts, strata, stop reasons — everything that is
    bit-reproducible from [(seed, plan)]. Byte-identical across domain
    counts and kill/resume chains; this is what golden-snapshot tests and
    the CI smoke job diff. *)

val json : Moard_campaign.Engine.result -> string
(** [stable_json] plus the performance section (domains, wall seconds,
    samples/s, cache speedup, per-domain run counts). *)

val pp : Format.formatter -> Moard_campaign.Engine.result -> unit
