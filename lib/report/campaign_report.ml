module Engine = Moard_campaign.Engine

(* Deterministic float rendering: shortest-exact is locale-free and
   round-trips, so stable reports are byte-comparable. *)
let fl x = Printf.sprintf "%.17g" x

let buf_obj b ~indent (o : Engine.object_result) =
  let pad = String.make indent ' ' in
  Buffer.add_string b (Printf.sprintf "%s{\n" pad);
  let field k v =
    Buffer.add_string b (Printf.sprintf "%s  %S: %s,\n" pad k v)
  in
  field "object" (Printf.sprintf "%S" o.Engine.object_name);
  field "population" (string_of_int o.Engine.population);
  field "sites" (string_of_int o.Engine.sites);
  field "samples" (string_of_int o.Engine.samples);
  field "runs" (string_of_int o.Engine.runs);
  field "cache_hits" (string_of_int o.Engine.cache_hits);
  Array.iteri
    (fun c n -> field Engine.code_names.(c) (string_of_int n))
    o.Engine.by_code;
  field "estimate" (fl o.Engine.estimate);
  field "ci_lo" (fl o.Engine.lo);
  field "ci_hi" (fl o.Engine.hi);
  field "ci_halfwidth" (fl o.Engine.halfwidth);
  field "stopped" (Printf.sprintf "%S" (Engine.stop_reason_name o.Engine.stopped));
  let strata =
    o.Engine.strata |> Array.to_list
    |> List.filter (fun (s : Engine.stratum_result) -> s.Engine.population > 0)
    |> List.map (fun (s : Engine.stratum_result) ->
           Printf.sprintf
             "%s    { \"stratum\": %S, \"population\": %d, \"samples\": %d, \
              \"successes\": %d, \"ci_lo\": %s, \"ci_hi\": %s, \
              \"exhausted\": %b }"
             pad s.Engine.label s.Engine.population s.Engine.samples
             s.Engine.successes (fl s.Engine.lo) (fl s.Engine.hi)
             s.Engine.exhausted)
  in
  Buffer.add_string b
    (Printf.sprintf "%s  \"strata\": [\n%s\n%s  ]\n" pad
       (String.concat ",\n" strata)
       pad);
  Buffer.add_string b (Printf.sprintf "%s}" pad)

let json_body b ?perf (r : Engine.result) =
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"moard-campaign-report-v1\",\n");
  Buffer.add_string b (Printf.sprintf "  \"workload\": %S,\n" r.Engine.workload_name);
  (* single-bit reports omit the field so historical payloads stay
     byte-identical *)
  if r.Engine.model <> Moard_bits.Errmodel.Single_bit then
    Buffer.add_string b
      (Printf.sprintf "  \"error_model\": %S,\n"
         (Moard_bits.Errmodel.to_string r.Engine.model));
  Buffer.add_string b (Printf.sprintf "  \"plan\": %S,\n" r.Engine.plan_hash);
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.Engine.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"confidence\": %s,\n" (fl r.Engine.confidence));
  Buffer.add_string b
    (Printf.sprintf "  \"ci_width_target\": %s,\n" (fl r.Engine.ci_width));
  (match perf with
  | None -> ()
  | Some () ->
    let p = r.Engine.perf in
    let samples =
      Array.fold_left (fun a o -> a + o.Engine.samples) 0 r.Engine.objects
    in
    let runs =
      Array.fold_left (fun a o -> a + o.Engine.runs) 0 r.Engine.objects
    in
    Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" r.Engine.domains);
    Buffer.add_string b
      (Printf.sprintf "  \"wall_seconds\": %s,\n" (fl p.Engine.wall_seconds));
    Buffer.add_string b
      (Printf.sprintf "  \"inject_seconds\": %s,\n" (fl p.Engine.inject_seconds));
    Buffer.add_string b
      (Printf.sprintf "  \"samples_per_sec\": %s,\n"
         (fl
            (float_of_int samples
            /. Float.max 1e-9 p.Engine.inject_seconds)));
    Buffer.add_string b
      (Printf.sprintf "  \"speedup_from_cache\": %s,\n"
         (fl (float_of_int samples /. float_of_int (max 1 runs))));
    Buffer.add_string b
      (Printf.sprintf "  \"per_domain_runs\": [%s],\n"
         (String.concat ", "
            (Array.to_list (Array.map string_of_int p.Engine.per_domain_runs)))));
  let objs =
    Array.to_list r.Engine.objects
    |> List.map (fun o ->
           let ob = Buffer.create 512 in
           buf_obj ob ~indent:4 o;
           Buffer.contents ob)
  in
  Buffer.add_string b
    (Printf.sprintf "  \"objects\": [\n%s\n  ]\n" (String.concat ",\n" objs));
  Buffer.add_string b "}\n"

let stable_json r =
  let b = Buffer.create 2048 in
  json_body b r;
  Buffer.contents b

let json r =
  let b = Buffer.create 2048 in
  json_body b ~perf:() r;
  Buffer.contents b

let pp ppf (r : Engine.result) =
  Format.fprintf ppf
    "campaign %s%s (plan %s, seed %d, %g%% confidence, target halfwidth %g, \
     %d domain%s)@\n"
    r.Engine.workload_name
    (if r.Engine.model <> Moard_bits.Errmodel.Single_bit then
       " [" ^ Moard_bits.Errmodel.to_string r.Engine.model ^ "]"
     else "")
    r.Engine.plan_hash r.Engine.seed
    (100.0 *. r.Engine.confidence)
    r.Engine.ci_width r.Engine.domains
    (if r.Engine.domains = 1 then "" else "s");
  Array.iter
    (fun (o : Engine.object_result) ->
      Format.fprintf ppf "@\n%s: %.4f in [%.4f, %.4f] (+/- %.4f), %s@\n"
        o.Engine.object_name o.Engine.estimate o.Engine.lo o.Engine.hi
        o.Engine.halfwidth
        (Engine.stop_reason_name o.Engine.stopped);
      Format.fprintf ppf "  %s@\n"
        (Chart.whisker ~width:40 ~center:o.Engine.estimate
           ~margin:o.Engine.halfwidth ());
      Format.fprintf ppf
        "  %d / %d population sampled (%d sites); %d runs, %d cache hits \
         (%.1fx from cache)@\n"
        o.Engine.samples o.Engine.population o.Engine.sites o.Engine.runs
        o.Engine.cache_hits
        (float_of_int o.Engine.samples /. float_of_int (max 1 o.Engine.runs));
      Format.fprintf ppf "  outcomes: same %d, acceptable %d, incorrect %d, crashed %d@\n"
        o.Engine.by_code.(0) o.Engine.by_code.(1) o.Engine.by_code.(2)
        o.Engine.by_code.(3);
      Array.iter
        (fun (s : Engine.stratum_result) ->
          if s.Engine.population > 0 then
            Format.fprintf ppf
              "    %-22s %5d/%-5d %s  [%.4f, %.4f]%s@\n" s.Engine.label
              s.Engine.samples s.Engine.population
              (if s.Engine.samples > 0 then
                 Printf.sprintf "rate %.4f"
                   (float_of_int s.Engine.successes
                   /. float_of_int s.Engine.samples)
               else "rate   -  ")
              s.Engine.lo s.Engine.hi
              (if s.Engine.exhausted then " (exact)" else ""))
        o.Engine.strata)
    r.Engine.objects;
  let p = r.Engine.perf in
  let samples =
    Array.fold_left (fun a o -> a + o.Engine.samples) 0 r.Engine.objects
  in
  Format.fprintf ppf "@\n%d samples in %.3fs injecting (%.0f samples/s); per-domain runs: %s@\n"
    samples p.Engine.inject_seconds
    (float_of_int samples /. Float.max 1e-9 p.Engine.inject_seconds)
    (String.concat ", "
       (Array.to_list (Array.map string_of_int p.Engine.per_domain_runs)))
