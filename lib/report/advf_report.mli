(** Canonical JSON rendering of an aDVF report.

    This is the byte-stable payload contract of the result store and the
    [moardd] daemon: for a fixed (program, object, options), the string is
    identical whether computed offline by the CLI, by a daemon worker, or
    recomputed after a corrupt store entry — every count in the report is
    deterministic for a sequential analysis on a fresh context shard, and
    floats are rendered shortest-exact. *)

val json :
  ?model:Moard_bits.Errmodel.t -> Moard_core.Advf.report -> string
(** [model] (default [Single_bit]) labels the payload with the error model
    it was computed under; the field is emitted only for non-default
    models, so single-bit payloads keep their historical bytes. *)
