(** Canonical JSON rendering of an aDVF report.

    This is the byte-stable payload contract of the result store and the
    [moardd] daemon: for a fixed (program, object, options), the string is
    identical whether computed offline by the CLI, by a daemon worker, or
    recomputed after a corrupt store entry — every count in the report is
    deterministic for a sequential analysis on a fresh context shard, and
    floats are rendered shortest-exact. *)

val json : Moard_core.Advf.report -> string
