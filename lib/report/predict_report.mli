(** Render a cross-input-size prediction ({!Moard_predict.Predict.t}). *)

val stable_json : Moard_predict.Predict.t -> string
(** Canonical JSON payload (schema ["moard-predict-report-v1"]). Floats
    render as ["%.17g"]; strata appear in enumeration order, filtered to
    those with pooled samples or a nonzero predicted population. For a
    fixed prediction the bytes are stable — no timings, no environment —
    so daemon answers, offline runs and store payloads byte-compare. *)

val json : Moard_predict.Predict.t -> string
(** [stable_json] plus the perf field ([fit_seconds]). Not byte-stable
    across runs. *)

val pp : Format.formatter -> Moard_predict.Predict.t -> unit
(** Human-oriented report: headline prediction with whisker chart,
    per-class rates, and the per-stratum extrapolation table. *)
