(** Report of the serial-vs-parallel resilience comparison ([moard
    parallel]): per data object, aDVF of the serial kernel, of the SPMD
    port at one hart (differentially byte-identical to serial for the
    ported kernels), and of the SPMD port at [harts >= 2] split by
    shared vs hart-private state ({!Moard_core.Hart_split}). *)

type row = {
  object_name : string;
  serial : Moard_core.Advf.report;       (** serial kernel *)
  par1 : Moard_core.Advf.report;         (** SPMD port at one hart *)
  parn : Moard_core.Hart_split.t;        (** SPMD port at N harts *)
}

type t = {
  benchmark : string;
  harts : int;
  cells : int;        (** distinct cells touched on the N-hart tape *)
  shared_cells : int; (** of which touched by two or more harts *)
  rows : row list;
}

val json : t -> string
(** Canonical JSON rendering. Every count is deterministic for
    sequential analyses on fresh contexts, so the payload is
    byte-stable across independent runs of the same configuration. *)

val pp : Format.formatter -> t -> unit
(** Human-readable comparison table. *)
