(** Rendering of {!Moard_advise.Advise} results: deterministic canonical
    JSON (the Pareto report served by the store, the daemon and the
    cluster byte-identically) and a human-readable summary. *)

val json : Moard_advise.Advise.t -> string

val stable_json : Moard_advise.Advise.t -> string
(** Identical to {!json}: an advise report carries no perf section —
    every field is a deterministic function of the design — so the
    stored/served payload is the whole report. *)

val pp : Format.formatter -> Moard_advise.Advise.t -> unit
