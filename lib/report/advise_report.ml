module Advise = Moard_advise.Advise
module Protect = Moard_opt.Protect

(* Deterministic float rendering, as in the other reports: shortest-exact
   and locale-free, so payloads are byte-comparable across processes,
   daemons and cluster shards. *)
let fl x = Printf.sprintf "%.17g" x

let buf_plan b ~indent (p : Advise.plan_outcome) =
  let pad = String.make indent ' ' in
  Buffer.add_string b (Printf.sprintf "%s{\n" pad);
  let field k v =
    Buffer.add_string b (Printf.sprintf "%s  %S: %s,\n" pad k v)
  in
  field "plan" (Printf.sprintf "%S" p.Advise.id);
  field "transforms"
    ("["
    ^ String.concat ", "
        (List.map
           (fun t -> Printf.sprintf "%S" (Protect.transform_name t))
           p.Advise.plan.Protect.transforms)
    ^ "]");
  field "advf" (fl p.Advise.advf);
  field "ci_lo" (fl p.Advise.lo);
  field "ci_hi" (fl p.Advise.hi);
  field "vulnerability" (fl p.Advise.vulnerability);
  field "reduction" (fl p.Advise.reduction);
  field "golden_steps" (string_of_int p.Advise.golden_steps);
  field "overhead" (fl p.Advise.overhead);
  field "samples" (string_of_int p.Advise.samples);
  field "runs" (string_of_int p.Advise.runs);
  Buffer.add_string b
    (Printf.sprintf "%s  \"pareto\": %b\n" pad p.Advise.pareto);
  Buffer.add_string b (Printf.sprintf "%s}" pad)

let buf_obj b ~indent (o : Advise.object_advice) =
  let pad = String.make indent ' ' in
  Buffer.add_string b (Printf.sprintf "%s{\n" pad);
  let field k v =
    Buffer.add_string b (Printf.sprintf "%s  %S: %s,\n" pad k v)
  in
  field "object" (Printf.sprintf "%S" o.Advise.object_name);
  field "bytes" (string_of_int o.Advise.bytes);
  field "sites" (string_of_int o.Advise.sites);
  field "population" (string_of_int o.Advise.population);
  field "advf" (fl o.Advise.advf);
  field "ci_lo" (fl o.Advise.lo);
  field "ci_hi" (fl o.Advise.hi);
  field "vulnerability" (fl o.Advise.vulnerability);
  field "access_rate" (fl o.Advise.access_rate);
  field "contribution" (fl o.Advise.contribution);
  field "recommended"
    (match o.Advise.recommended with
    | None -> "null"
    | Some id -> Printf.sprintf "%S" id);
  let plans =
    List.map
      (fun p ->
        let pb = Buffer.create 512 in
        buf_plan pb ~indent:(indent + 4) p;
        Buffer.contents pb)
      o.Advise.plans
  in
  Buffer.add_string b
    (Printf.sprintf "%s  \"plans\": [\n%s\n%s  ]\n" pad
       (String.concat ",\n" plans)
       pad);
  Buffer.add_string b (Printf.sprintf "%s}" pad)

let json (r : Advise.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"moard-advise-report-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"workload\": %S,\n" r.Advise.workload_name);
  if r.Advise.model <> Moard_bits.Errmodel.Single_bit then
    Buffer.add_string b
      (Printf.sprintf "  \"error_model\": %S,\n"
         (Moard_bits.Errmodel.to_string r.Advise.model));
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" r.Advise.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"confidence\": %s,\n" (fl r.Advise.confidence));
  Buffer.add_string b
    (Printf.sprintf "  \"ci_width_target\": %s,\n" (fl r.Advise.ci_width));
  Buffer.add_string b
    (Printf.sprintf "  \"golden_steps\": %d,\n" r.Advise.base_steps);
  let objs =
    List.map
      (fun o ->
        let ob = Buffer.create 1024 in
        buf_obj ob ~indent:4 o;
        Buffer.contents ob)
      r.Advise.objects
  in
  Buffer.add_string b
    (Printf.sprintf "  \"objects\": [\n%s\n  ]\n" (String.concat ",\n" objs));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Every field of an advise report is a deterministic function of the
   design — there is no perf section — so the stable payload is the
   whole report. *)
let stable_json = json

let pp ppf (r : Advise.t) =
  Format.fprintf ppf
    "advise %s%s (seed %d, %g%% confidence, target halfwidth %g)@\n"
    r.Advise.workload_name
    (if r.Advise.model <> Moard_bits.Errmodel.Single_bit then
       " [" ^ Moard_bits.Errmodel.to_string r.Advise.model ^ "]"
     else "")
    r.Advise.seed
    (100.0 *. r.Advise.confidence)
    r.Advise.ci_width;
  List.iter
    (fun (o : Advise.object_advice) ->
      Format.fprintf ppf
        "  %-14s aDVF %.4f  vuln %.4f  %6d B  %5d sites  contribution %.3g%s@\n"
        o.Advise.object_name o.Advise.advf o.Advise.vulnerability
        o.Advise.bytes o.Advise.sites o.Advise.contribution
        (match o.Advise.recommended with
        | None -> ""
        | Some id -> "  -> " ^ id);
      List.iter
        (fun (p : Advise.plan_outcome) ->
          Format.fprintf ppf
            "    %-18s residual %.4f  reduction %8.1fx  overhead %.2fx%s@\n"
            p.Advise.id p.Advise.vulnerability p.Advise.reduction
            p.Advise.overhead
            (if p.Advise.pareto then "  [pareto]" else ""))
        o.Advise.plans)
    r.Advise.objects
