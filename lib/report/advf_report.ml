module Advf = Moard_core.Advf
module Verdict = Moard_core.Verdict

let fl x = Printf.sprintf "%.17g" x

let json ?(model = Moard_bits.Errmodel.Single_bit) (r : Advf.report) =
  let b = Buffer.create 1024 in
  let field ?(last = false) k v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" k v (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "schema" "\"moard-advf-report-v1\"";
  field "object" (Printf.sprintf "%S" r.Advf.object_name);
  (* single-bit payloads omit the field, keeping historical store entries
     and golden snapshots byte-identical *)
  if model <> Moard_bits.Errmodel.Single_bit then
    field "error_model"
      (Printf.sprintf "%S" (Moard_bits.Errmodel.to_string model));
  field "involvements" (string_of_int r.Advf.involvements);
  field "masking_events" (fl r.Advf.masking_events);
  field "advf" (fl r.Advf.advf);
  let named names values =
    "{ "
    ^ String.concat ", "
        (List.mapi
           (fun i n -> Printf.sprintf "%S: %s" n (fl values.(i)))
           names)
    ^ " }"
  in
  field "by_level"
    (named (List.map Verdict.level_name Verdict.levels) r.Advf.by_level);
  field "by_kind"
    (named (List.map Verdict.kind_name Verdict.kinds) r.Advf.by_kind);
  field "patterns_analyzed" (string_of_int r.Advf.patterns_analyzed);
  field "op_resolved" (string_of_int r.Advf.op_resolved);
  field "prop_resolved" (string_of_int r.Advf.prop_resolved);
  field "fi_resolved" (string_of_int r.Advf.fi_resolved);
  field "unresolved" (string_of_int r.Advf.unresolved);
  field "fi_runs" (string_of_int r.Advf.fi_runs);
  field "fi_cache_hits" (string_of_int r.Advf.fi_cache_hits);
  field ~last:true "verdict_cache_hits" (string_of_int r.Advf.verdict_cache_hits);
  Buffer.add_string b "}\n";
  Buffer.contents b
