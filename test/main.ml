let () =
  Alcotest.run "moard"
    (Test_bits.suite @ Test_ir.suite @ Test_semantics.suite @ Test_lang.suite
   @ Test_vm.suite @ Test_trace.suite @ Test_masking.suite
   @ Test_propagation.suite @ Test_model.suite @ Test_inject.suite
   @ Test_stats.suite @ Test_kernels.suite @ Test_report.suite
   @ Test_opt.suite @ Test_text.suite @ Test_derive.suite @ Test_parallel.suite @ Test_placement.suite @ Test_edges.suite @ Test_pipeline.suite
   @ Test_campaign.suite @ Test_campaign_diff.suite @ Test_store.suite
   @ Test_server.suite @ Test_batched.suite @ Test_chaos.suite
   @ Test_cluster.suite @ Test_predict.suite @ Test_parallel_vm.suite
   @ Test_advise.suite)
