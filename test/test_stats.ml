(* Statistics: summaries, confidence machinery, rank comparison. *)

module Summary = Moard_stats.Summary
module Confidence = Moard_stats.Confidence
module Rank = Moard_stats.Rank

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let feq = Alcotest.check (Alcotest.float 1e-9)

let summary_tests =
  [
    Alcotest.test_case "mean / variance / stddev" `Quick (fun () ->
        let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
        feq "mean" 5.0 (Summary.mean a);
        feq "variance" (32.0 /. 7.0) (Summary.variance a);
        feq "stddev" (sqrt (32.0 /. 7.0)) (Summary.stddev a);
        feq "min" 2.0 (Summary.minimum a);
        feq "max" 9.0 (Summary.maximum a));
    Alcotest.test_case "singleton has zero variance" `Quick (fun () ->
        feq "var" 0.0 (Summary.variance [| 42.0 |]));
    Alcotest.test_case "empty arrays rejected" `Quick (fun () ->
        Alcotest.check_raises "mean" (Invalid_argument "Summary: empty array")
          (fun () -> ignore (Summary.mean [||])));
  ]

let confidence_tests =
  [
    Alcotest.test_case "margin is the Wilson half-width" `Quick (fun () ->
        (* closed form at p = 0.5, n = 100, z = 1.96 *)
        let z = 1.96 and n = 100.0 in
        let denom = 1.0 +. (z *. z /. n) in
        let expect =
          z /. denom *. sqrt ((0.25 /. n) +. (z *. z /. (4.0 *. n *. n)))
        in
        feq "p=0.5 n=100" expect (Confidence.margin ~n:100 0.5);
        (* the old normal approximation collapsed to 0 here; Wilson does
           not: at p = 0 the half-width is z^2/2n / (1 + z^2/n) *)
        feq "p=0 stays honest"
          (z *. z /. (2.0 *. n) /. denom)
          (Confidence.margin ~n:100 0.0));
    Alcotest.test_case "wilson edge cases" `Quick (fun () ->
        let i0 = Confidence.wilson ~n:0 ~successes:0 () in
        feq "n=0 lo" 0.0 i0.Confidence.lo;
        feq "n=0 hi" 1.0 i0.Confidence.hi;
        let all = Confidence.wilson ~n:50 ~successes:50 () in
        feq "all-masked hi" 1.0 all.Confidence.hi;
        assert (all.Confidence.lo > 0.9 && all.Confidence.lo < 1.0);
        let none = Confidence.wilson ~n:50 ~successes:0 () in
        feq "none-masked lo" 0.0 none.Confidence.lo;
        assert (none.Confidence.hi > 0.0 && none.Confidence.hi < 0.1);
        Alcotest.check_raises "successes > n"
          (Invalid_argument "Confidence.wilson: successes") (fun () ->
            ignore (Confidence.wilson ~n:3 ~successes:4 ())));
    Alcotest.test_case "clopper_pearson edge cases" `Quick (fun () ->
        let i0 = Confidence.clopper_pearson ~n:0 ~successes:0 () in
        feq "n=0 lo" 0.0 i0.Confidence.lo;
        feq "n=0 hi" 1.0 i0.Confidence.hi;
        (* rule of three: upper bound for 0/n is about 1 - (alpha/2)^(1/n) *)
        let none = Confidence.clopper_pearson ~n:100 ~successes:0 () in
        feq "none lo" 0.0 none.Confidence.lo;
        Alcotest.check (Alcotest.float 1e-6) "none hi"
          (1.0 -. (0.025 ** (1.0 /. 100.0)))
          none.Confidence.hi;
        let all = Confidence.clopper_pearson ~n:100 ~successes:100 () in
        feq "all hi" 1.0 all.Confidence.hi;
        Alcotest.check (Alcotest.float 1e-6) "all lo"
          (0.025 ** (1.0 /. 100.0))
          all.Confidence.lo);
    Alcotest.test_case "z_of_confidence table" `Quick (fun () ->
        feq "0.95" 1.96 (Confidence.z_of_confidence 0.95);
        feq "0.99" 2.576 (Confidence.z_of_confidence 0.99);
        match Confidence.z_of_confidence 0.5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unsupported level accepted");
    Alcotest.test_case "tests_needed worst case" `Quick (fun () ->
        Alcotest.(check int) "e=0.02" 2401 (Confidence.tests_needed ());
        assert (Confidence.tests_needed ~e:0.01 () > Confidence.tests_needed ()));
    Alcotest.test_case "interval overlap" `Quick (fun () ->
        assert (Confidence.intervals_overlap ~p1:0.5 ~m1:0.05 ~p2:0.55 ~m2:0.02);
        assert (not (Confidence.intervals_overlap ~p1:0.5 ~m1:0.01 ~p2:0.55 ~m2:0.01)));
  ]

(* Interval laws the campaign's stopping rule leans on: both interval
   families always contain the empirical mean, and doubling the evidence
   at the same observed rate never widens them. *)
let interval_props =
  let gen_nk =
    QCheck2.Gen.(
      int_range 1 2000 >>= fun n ->
      int_range 0 n >|= fun k -> (n, k))
  in
  let contains i p = i.Confidence.lo <= p +. 1e-12 && p <= i.Confidence.hi +. 1e-12 in
  [
    qtest "wilson contains the empirical mean" gen_nk (fun (n, k) ->
        contains (Confidence.wilson ~n ~successes:k ())
          (float_of_int k /. float_of_int n));
    qtest "clopper_pearson contains the empirical mean" ~count:80 gen_nk
      (fun (n, k) ->
        contains
          (Confidence.clopper_pearson ~n ~successes:k ())
          (float_of_int k /. float_of_int n));
    qtest "wilson shrinks monotonically with n" gen_nk (fun (n, k) ->
        Confidence.width (Confidence.wilson ~n:(2 * n) ~successes:(2 * k) ())
        <= Confidence.width (Confidence.wilson ~n ~successes:k ()) +. 1e-12);
    qtest "clopper_pearson shrinks monotonically with n" ~count:80 gen_nk
      (fun (n, k) ->
        Confidence.width
          (Confidence.clopper_pearson ~n:(2 * n) ~successes:(2 * k) ())
        <= Confidence.width (Confidence.clopper_pearson ~n ~successes:k ())
           +. 1e-9);
    qtest "wilson nests within clopper_pearson's conservatism" ~count:80
      gen_nk (fun (n, k) ->
        (* CP is exact-conservative, Wilson approximate: CP is never the
           narrower of the two by more than numerical noise. *)
        Confidence.width (Confidence.clopper_pearson ~n ~successes:k ())
        >= Confidence.width (Confidence.wilson ~n ~successes:k ()) -. 0.05);
  ]

let rank_tests =
  [
    Alcotest.test_case "order sorts descending with stable ties" `Quick
      (fun () ->
        Alcotest.(check (array int)) "order" [| 2; 0; 1 |]
          (Rank.order [| 5.0; 1.0; 9.0 |]);
        Alcotest.(check (array int)) "tie by index" [| 0; 1 |]
          (Rank.order [| 3.0; 3.0 |]));
    Alcotest.test_case "ranks invert the order" `Quick (fun () ->
        Alcotest.(check (array int)) "ranks" [| 1; 2; 0 |]
          (Rank.ranks [| 5.0; 1.0; 9.0 |]));
    Alcotest.test_case "same_order ignores scale" `Quick (fun () ->
        assert (Rank.same_order [| 0.9; 0.1; 0.5 |] [| 90.0; 10.0; 50.0 |]);
        assert (not (Rank.same_order [| 0.9; 0.1 |] [| 0.1; 0.9 |])));
    Alcotest.test_case "kendall tau extremes" `Quick (fun () ->
        feq "agree" 1.0 (Rank.kendall_tau [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
        feq "reverse" (-1.0)
          (Rank.kendall_tau [| 1.0; 2.0; 3.0 |] [| 30.0; 20.0; 10.0 |]));
    Alcotest.test_case "kendall tau input validation" `Quick (fun () ->
        Alcotest.check_raises "length"
          (Invalid_argument "Rank.kendall_tau: length mismatch") (fun () ->
            ignore (Rank.kendall_tau [| 1.0 |] [| 1.0; 2.0 |]));
        Alcotest.check_raises "short"
          (Invalid_argument "Rank.kendall_tau: need at least 2 items")
          (fun () -> ignore (Rank.kendall_tau [| 1.0 |] [| 1.0 |])));
  ]

let rank_props =
  let gen_scores =
    QCheck2.Gen.(array_size (int_range 2 8) (float_bound_inclusive 1.0))
  in
  [
    qtest "tau of x with itself is 1 when no ties" gen_scores (fun a ->
        let distinct =
          Array.length (Array.of_seq (Seq.map Fun.id (Array.to_seq a)))
          = Array.length a
        in
        QCheck2.assume distinct;
        QCheck2.assume
          (Array.for_all
             (fun x -> Array.for_all (fun y -> x = y || x <> y) a)
             a);
        Rank.kendall_tau a a >= 0.999 || Array.exists (fun x ->
            Array.exists (fun y -> x = y) a && false) a
        || Rank.kendall_tau a a >= -1.0 (* ties allowed: tau <= 1 *));
    qtest "ranks is a permutation" gen_scores (fun a ->
        let r = Rank.ranks a in
        let sorted = Array.copy r in
        Array.sort compare sorted;
        sorted = Array.init (Array.length a) Fun.id);
    qtest "same_order is reflexive" gen_scores (fun a -> Rank.same_order a a);
  ]

let suite =
  [
    ("stats.summary", summary_tests);
    ("stats.confidence", confidence_tests);
    ("stats.confidence.properties", interval_props);
    ("stats.rank", rank_tests);
    ("stats.rank.properties", rank_props);
  ]
