(* The multicore driver must agree exactly with the sequential analysis. *)

module Advf = Moard_core.Advf

let workload () = Moard_kernels.Lulesh.workload ()

let close = Alcotest.float 1e-12

let tests =
  [
    Alcotest.test_case "parallel equals sequential" `Slow (fun () ->
        let seq =
          Moard_core.Model.analyze
            (Moard_inject.Context.make (workload ()))
            ~object_name:"m_delv_zeta"
        in
        let par =
          Moard_parallel.Parallel_model.analyze ~domains:3 ~workload
            ~object_name:"m_delv_zeta" ()
        in
        Alcotest.check close "aDVF" seq.Advf.advf par.Advf.advf;
        Alcotest.(check int) "involvements" seq.Advf.involvements
          par.Advf.involvements;
        Array.iteri
          (fun t s -> Alcotest.check close "level" s par.Advf.by_level.(t))
          seq.Advf.by_level;
        Array.iteri
          (fun t s -> Alcotest.check close "kind" s par.Advf.by_kind.(t))
          seq.Advf.by_kind);
    Alcotest.test_case "one domain falls back to sequential" `Quick
      (fun () ->
        let r =
          Moard_parallel.Parallel_model.analyze ~domains:1
            ~workload:(fun () ->
              Moard_kernels.Lulesh.workload ~nelem:6 ())
            ~object_name:"m_elemBC" ()
        in
        assert (r.Advf.advf >= 0.0 && r.Advf.advf <= 1.0));
    Alcotest.test_case "absurd domain counts are capped, result unchanged"
      `Quick (fun () ->
        (* oversubscribing a CPU-bound pool is a footgun, not a feature:
           ~domains:64 must silently degrade to recommended_domain_count
           and still produce the sequential answer exactly *)
        let workload () = Moard_kernels.Lulesh.workload ~nelem:6 () in
        let seq =
          Moard_parallel.Parallel_model.analyze ~domains:1 ~workload
            ~object_name:"m_elemBC" ()
        in
        let wide =
          Moard_parallel.Parallel_model.analyze ~domains:64 ~workload
            ~object_name:"m_elemBC" ()
        in
        Alcotest.check close "aDVF" seq.Advf.advf wide.Advf.advf;
        Alcotest.(check int) "involvements" seq.Advf.involvements
          wide.Advf.involvements);
    Alcotest.test_case "merge is involvement-weighted" `Quick (fun () ->
        let mk name m advf events =
          {
            Advf.object_name = name;
            involvements = m;
            masking_events = events;
            advf;
            by_level = [| advf; 0.0; 0.0 |];
            by_kind = [| advf; 0.0; 0.0; 0.0 |];
            patterns_analyzed = m * 64;
            op_resolved = m;
            prop_resolved = 0;
            fi_resolved = 0;
            unresolved = 0;
            fi_runs = 0;
            fi_cache_hits = 0;
            verdict_cache_hits = 0;
          }
        in
        let merged = Advf.merge [ mk "x" 10 1.0 10.0; mk "x" 30 0.5 15.0 ] in
        Alcotest.check close "weighted aDVF" 0.625 merged.Advf.advf;
        Alcotest.(check int) "involvements" 40 merged.Advf.involvements;
        Alcotest.check close "events" 25.0 merged.Advf.masking_events;
        Alcotest.check close "levels follow" 0.625 merged.Advf.by_level.(0));
    Alcotest.test_case "merge rejects mixed objects" `Quick (fun () ->
        let r =
          Moard_core.Model.analyze
            (Moard_inject.Context.make
               (Moard_kernels.Lulesh.workload ~nelem:6 ()))
            ~object_name:"m_elemBC"
        in
        match Advf.merge [ r; { r with Advf.object_name = "other" } ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let suite = [ ("parallel.model", tests) ]
