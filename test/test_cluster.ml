(* The sharded serving stack (PR: cluster moardd).

   Layered like lib/cluster: the consistent-hash ring's placement
   properties, the proxy's routing keys, then a real in-process cluster
   — two shard daemons behind the proxy on Unix sockets — checked for
   the invariant every layer above leans on: a response is a typed
   error or byte-identical to the offline computation, whether it was
   computed, coalesced, hedged, failed over, or warmed. *)

module Ring = Moard_cluster.Ring
module Proxy = Moard_cluster.Proxy
module Local = Moard_cluster.Local
module Harness = Moard_cluster.Cluster_harness
module Jsonx = Moard_server.Jsonx
module Client = Moard_server.Client
module Chaos = Moard_chaos.Chaos
module Query = Moard_store.Query
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context

(* ---------------------------------------------------------------- *)
(* Ring *)

let keys = List.init 200 (Printf.sprintf "key-%d")

let ring_tests =
  [
    Alcotest.test_case "placement is deterministic and order-insensitive"
      `Quick (fun () ->
        let r = Ring.make [ "a"; "b"; "c" ] in
        let r' = Ring.make [ "c"; "a"; "b" ] in
        List.iter
          (fun k ->
            Alcotest.(check string) k (Ring.owner r k) (Ring.owner r' k);
            Alcotest.(check (list string))
              (k ^ " owners") (Ring.owners r ~n:2 k)
              (Ring.owners r' ~n:2 k))
          keys);
    Alcotest.test_case "owner chains are distinct and every shard gets keys"
      `Quick (fun () ->
        let r = Ring.make [ "a"; "b"; "c" ] in
        let seen = Hashtbl.create 3 in
        List.iter
          (fun k ->
            match Ring.owners r ~n:2 k with
            | [ p; s ] ->
              Alcotest.(check bool) "replica differs from primary" true (p <> s);
              Hashtbl.replace seen p ()
            | l -> Alcotest.failf "%d owners for %s" (List.length l) k)
          keys;
        Alcotest.(check int) "all shards own something" 3 (Hashtbl.length seen));
    Alcotest.test_case "adding a shard moves keys only onto the new shard"
      `Quick (fun () ->
        let r3 = Ring.make [ "a"; "b"; "c" ] in
        let r4 = Ring.make [ "a"; "b"; "c"; "d" ] in
        let moved = ref 0 in
        List.iter
          (fun k ->
            let before = Ring.owner r3 k and after = Ring.owner r4 k in
            if before <> after then begin
              incr moved;
              Alcotest.(check string) ("moved key " ^ k) "d" after
            end)
          keys;
        Alcotest.(check bool) "some keys moved" true (!moved > 0);
        Alcotest.(check bool)
          (Printf.sprintf "bounded reshuffle (%d/200 moved)" !moved)
          true
          (!moved < 120));
    Alcotest.test_case "rejects empty and duplicate shard names" `Quick
      (fun () ->
        (match Ring.make [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "empty ring accepted");
        match Ring.make [ "a"; "a" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate shard accepted");
  ]

(* ---------------------------------------------------------------- *)
(* Routing keys *)

let advf_req ?(benchmark = "LULESH") obj =
  Jsonx.Obj
    [
      ("op", Jsonx.Str "advf");
      ("benchmark", Jsonx.Str benchmark);
      ("object", Jsonx.Str obj);
    ]

let routing_tests =
  [
    Alcotest.test_case "warm routes with the advf it precomputes; campaign \
                        with its report" `Quick (fun () ->
        let warm_req =
          Jsonx.Obj
            [
              ("op", Jsonx.Str "warm");
              ("benchmark", Jsonx.Str "LULESH");
              ("object", Jsonx.Str "m_elemBC");
            ]
        in
        Alcotest.(check string)
          "warm = advf"
          (Proxy.routing_key (advf_req "m_elemBC"))
          (Proxy.routing_key warm_req);
        let campaign op =
          Jsonx.Obj
            [
              ("op", Jsonx.Str op);
              ("benchmark", Jsonx.Str "MM");
              ("ci_width", Jsonx.Float 0.1);
            ]
        in
        Alcotest.(check string)
          "campaign = report"
          (Proxy.routing_key (campaign "campaign"))
          (Proxy.routing_key (campaign "report"));
        Alcotest.(check bool) "objects separate" true
          (Proxy.routing_key (advf_req "m_elemBC")
          <> Proxy.routing_key (advf_req "m_delv_zeta")));
  ]

(* ---------------------------------------------------------------- *)
(* The cluster, end to end *)

let with_cluster ?shard_shims ?tune ?(shards = 2) f =
  let root = Filename.temp_file "moard_test_cluster" "" in
  Sys.remove root;
  let c = Local.start ?shard_shims ?tune ~root ~shards () in
  Fun.protect ~finally:(fun () -> Local.stop c) (fun () -> f c)

let rpc c req = Client.rpc ~socket:(Local.socket c) req

let served header = Jsonx.str (Jsonx.member "served" header)
let shard_of header = Jsonx.str (Jsonx.member "shard" header)

let direct_payload obj =
  let e = Registry.find "LULESH" in
  Query.advf_payload (Context.make (e.Registry.workload ())) ~object_name:obj

let proxy_counter stat name =
  Option.bind (Jsonx.member "proxy" stat) (Jsonx.member name) |> Jsonx.int

(* the shard Local names, as the proxy's ring places them *)
let primary_for req = Ring.owner (Ring.make [ "shard0"; "shard1" ]) (Proxy.routing_key req)

let cluster_tests =
  [
    Alcotest.test_case "served bytes equal offline, cold and warm, with \
                        shard attribution" `Quick (fun () ->
        with_cluster (fun c ->
            let direct = direct_payload "m_elemBC" in
            let h1, p1 = rpc c (advf_req "m_elemBC") in
            Alcotest.(check (option string)) "cold" (Some "computed") (served h1);
            Alcotest.(check (option string)) "cold bytes" (Some direct) p1;
            Alcotest.(check bool) "shard attributed" true (shard_of h1 <> None);
            Alcotest.(check (option string))
              "the ring's pick" (Some (primary_for (advf_req "m_elemBC")))
              (shard_of h1);
            let h2, p2 = rpc c (advf_req "m_elemBC") in
            (match served h2 with
            | Some ("memory-hit" | "disk-hit") -> ()
            | s ->
              Alcotest.failf "warm query not a hit: %s"
                (Option.value ~default:"?" s));
            Alcotest.(check (option string)) "warm bytes" (Some direct) p2));
    Alcotest.test_case "one cold key, six clients: one compute, five \
                        coalesced, six identical payloads" `Quick (fun () ->
        let shims _ =
          {
            Chaos.passthrough with
            Chaos.wrap_job =
              (fun job () ->
                Unix.sleepf 0.3;
                job ());
          }
        in
        with_cluster ~shard_shims:shims (fun c ->
            let direct = direct_payload "m_delv_zeta" in
            let k = 6 in
            let results = Array.make k None in
            let threads =
              Array.init k (fun i ->
                  Thread.create
                    (fun i -> results.(i) <- Some (rpc c (advf_req "m_delv_zeta")))
                    i)
            in
            Array.iter Thread.join threads;
            let computed = ref 0 and coalesced = ref 0 in
            Array.iteri
              (fun i -> function
                | None -> Alcotest.failf "client %d lost its response" i
                | Some (h, p) ->
                  (match served h with
                  | Some "computed" -> incr computed
                  | Some "coalesced" -> incr coalesced
                  | s ->
                    Alcotest.failf "client %d: unexpected served %s" i
                      (Option.value ~default:"?" s));
                  Alcotest.(check (option string))
                    (Printf.sprintf "client %d bytes" i)
                    (Some direct) p)
              results;
            Alcotest.(check int) "exactly one compute" 1 !computed;
            Alcotest.(check int) "the rest coalesced" (k - 1) !coalesced;
            let stat, _ = rpc c (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            Alcotest.(check (option int))
              "proxy counted them" (Some (k - 1))
              (proxy_counter stat "coalesced")));
    Alcotest.test_case "crash-stop owner: replica answers with identical \
                        bytes" `Quick (fun () ->
        with_cluster (fun c ->
            let direct = direct_payload "m_elemBC" in
            let h1, p1 = rpc c (advf_req "m_elemBC") in
            Alcotest.(check (option string)) "before crash" (Some direct) p1;
            let owner = Option.get (shard_of h1) in
            let victim = if owner = "shard0" then 0 else 1 in
            Local.crash c victim;
            let h2, p2 = rpc c (advf_req "m_elemBC") in
            (match Client.error_of h2 with
            | Some (code, msg) -> Alcotest.failf "typed %s after crash: %s" code msg
            | None -> ());
            Alcotest.(check (option string)) "replica bytes" (Some direct) p2;
            Alcotest.(check bool) "answered by the survivor" true
              (shard_of h2 <> Some owner);
            let stat, _ = rpc c (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            Alcotest.(check bool) "failover counted" true
              (match proxy_counter stat "failovers" with
              | Some n -> n >= 1
              | None -> false);
            Local.restart c victim;
            let _, p3 = rpc c (advf_req "m_elemBC") in
            Alcotest.(check (option string)) "after restart" (Some direct) p3));
    Alcotest.test_case "a slow owner is hedged: the replica's answer wins, \
                        bytes identical" `Quick (fun () ->
        let req = advf_req "m_elemBC" in
        let primary = primary_for req in
        let shims i =
          if Printf.sprintf "shard%d" i = primary then
            {
              Chaos.passthrough with
              Chaos.wrap_job =
                (fun job () ->
                  Unix.sleepf 2.0;
                  job ());
            }
          else Chaos.passthrough
        in
        with_cluster ~shard_shims:shims
          ~tune:(fun cfg -> { cfg with Proxy.hedge_after_s = Some 0.05 })
          (fun c ->
            let h, p = rpc c req in
            Alcotest.(check (option string))
              "hedged bytes" (Some (direct_payload "m_elemBC")) p;
            Alcotest.(check bool) "replica won" true
              (shard_of h <> None && shard_of h <> Some primary);
            let stat, _ = rpc c (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            Alcotest.(check bool) "hedge win counted" true
              (match proxy_counter stat "hedge_wins" with
              | Some n -> n >= 1
              | None -> false)));
    Alcotest.test_case "warm precomputes: the first client query is already \
                        a hit" `Quick (fun () ->
        with_cluster (fun c ->
            let h, _ =
              rpc c
                (Jsonx.Obj
                   [
                     ("op", Jsonx.Str "warm");
                     ("benchmark", Jsonx.Str "LULESH");
                     ("object", Jsonx.Str "m_elemBC");
                   ])
            in
            Alcotest.(check (option bool))
              "acknowledged as queued" (Some true)
              (Jsonx.bool (Jsonx.member "queued" h));
            let warmed () =
              let stat, _ = rpc c (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
              (Option.bind (Jsonx.member "proxy" stat) (Jsonx.member "warming")
              |> fun w -> Jsonx.int (Option.bind w (Jsonx.member "warmed")))
              = Some 1
              && Option.value ~default:[]
                   (Jsonx.list (Jsonx.member "shards" stat))
                 |> List.for_all (fun s ->
                        let w =
                          Option.bind (Jsonx.member "stat" s)
                            (Jsonx.member "warming")
                        in
                        Jsonx.int (Option.bind w (Jsonx.member "queued"))
                        = Some 0
                        && Jsonx.bool (Option.bind w (Jsonx.member "busy"))
                           = Some false)
            in
            let deadline = Unix.gettimeofday () +. 60.0 in
            while (not (warmed ())) && Unix.gettimeofday () < deadline do
              Thread.delay 0.05
            done;
            Alcotest.(check bool) "warming drained" true (warmed ());
            let h, p = rpc c (advf_req "m_elemBC") in
            (match served h with
            | Some ("memory-hit" | "disk-hit") -> ()
            | s ->
              Alcotest.failf "query after warm not a hit: %s"
                (Option.value ~default:"?" s));
            Alcotest.(check (option string))
              "warmed bytes" (Some (direct_payload "m_elemBC")) p));
  ]

(* ---------------------------------------------------------------- *)
(* The cluster chaos harness *)

let harness_tests =
  [
    Alcotest.test_case "cluster chaos: same seed, byte-identical report; \
                        invariant holds" `Slow (fun () ->
        let r1 = Harness.run ~seed:11 ~rounds:1 () in
        let r2 = Harness.run ~seed:11 ~rounds:1 () in
        Alcotest.(check string)
          "reports byte-identical"
          (Jsonx.to_string (Harness.to_json r1))
          (Jsonx.to_string (Harness.to_json r2));
        Alcotest.(check bool) "nothing diverged" true (r1.Harness.diverged = 0);
        Alcotest.(check bool) "no client hung" true (r1.Harness.hung = 0);
        Alcotest.(check bool) "survived" true r1.Harness.survived;
        Alcotest.(check int) "every request accounted for"
          r1.Harness.requests
          (r1.Harness.identical + r1.Harness.ok_dynamic + r1.Harness.partial
          + r1.Harness.transport_failures + r1.Harness.diverged
          + List.fold_left (fun a (_, n) -> a + n) 0 r1.Harness.typed_errors));
    Alcotest.test_case "cluster chaos: different seed, different schedule, \
                        same invariant" `Slow (fun () ->
        let r1 = Harness.run ~seed:11 ~rounds:1 () in
        let r3 = Harness.run ~seed:1234 ~rounds:1 () in
        Alcotest.(check bool) "schedules differ" true
          (r1.Harness.schedule_hash <> r3.Harness.schedule_hash);
        Alcotest.(check bool) "still survived" true r3.Harness.survived);
  ]

let suite =
  [
    ("cluster.ring", ring_tests);
    ("cluster.routing", routing_tests);
    ("cluster.proxy", cluster_tests);
    ("cluster.chaos", harness_tests);
  ]
