(* The content-addressed result store (PR: moardd).

   The contract under test: a stored payload is served byte-identical to
   a direct computation; a corrupted record is detected, healed and
   recomputed to the same bytes; the LRU respects its bounds; and gc
   never deletes a key that a live handle has touched. *)

module Record = Moard_store.Record
module Lru = Moard_store.Lru
module Key = Moard_store.Key
module Store = Moard_store.Store
module Query = Moard_store.Query
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine

let tmp_store_dir () =
  let d = Filename.temp_file "moard_test_store" "" in
  Sys.remove d;
  d

(* One golden run for the whole suite (shards are cheap, Context.make is
   not). *)
let ctx_cache = ref None

let ctx () =
  match !ctx_cache with
  | Some c -> c
  | None ->
    let e = Registry.find "LULESH" in
    let c = Context.make (e.Registry.workload ()) in
    ctx_cache := Some c;
    c

let program () =
  let e = Registry.find "LULESH" in
  (e.Registry.workload ()).Moard_inject.Workload.program

let obj = "m_elemBC"

(* The store's on-disk layout, replicated so tests can corrupt entries. *)
let entry_path dir key =
  let hex = Key.to_hex key in
  Filename.concat dir
    (Filename.concat "objects"
       (Filename.concat (String.sub hex 0 2) (hex ^ ".rec")))

let flip_byte path pos =
  let ic = open_in_bin path in
  let image = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string image in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

(* ---------------------------------------------------------------- *)
(* Record codec *)

let corruption = Alcotest.testable (Fmt.of_to_string Record.corruption_name) ( = )

let check_decode what expected image =
  match (Record.decode image, expected) with
  | Ok (k, p), Ok (k', p') ->
    Alcotest.(check bool) (what ^ " kind") true (k = k');
    Alcotest.(check string) (what ^ " payload") p' p
  | Error c, Error c' -> Alcotest.check corruption what c' c
  | Ok _, Error c ->
    Alcotest.failf "%s: decoded, expected %s" what (Record.corruption_name c)
  | Error c, Ok _ ->
    Alcotest.failf "%s: got %s, expected a payload" what
      (Record.corruption_name c)

let flip_byte_s image pos =
  let b = Bytes.of_string image in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  Bytes.to_string b

let record_tests =
  [
    Alcotest.test_case "roundtrip for every kind and the empty payload"
      `Quick (fun () ->
        List.iter
          (fun kind ->
            List.iter
              (fun payload ->
                check_decode "roundtrip"
                  (Ok (kind, payload))
                  (Record.encode ~kind payload))
              [ ""; "x"; String.init 4096 (fun i -> Char.chr (i land 0xff)) ])
          [ Record.Advf; Record.Campaign; Record.Tape ]);
    Alcotest.test_case "every header field is verified" `Quick (fun () ->
        let image = Record.encode ~kind:Record.Advf "the payload" in
        let mut pos = flip_byte_s image pos in
        check_decode "bad magic" (Error Record.Bad_magic) (mut 0);
        check_decode "truncated"
          (Error
             (Record.Truncated
                {
                  expected = String.length image;
                  got = String.length image - 3;
                }))
          (String.sub image 0 (String.length image - 3));
        check_decode "payload bit flip" (Error Record.Checksum_mismatch)
          (mut (String.length image - 1));
        check_decode "checksum bit flip" (Error Record.Checksum_mismatch)
          (mut (Record.header_bytes - 1));
        match Record.decode (mut 8) with
        | Error (Record.Bad_version _) -> ()
        | _ -> Alcotest.fail "version byte not verified");
    Alcotest.test_case "decode_expect rejects the wrong kind" `Quick (fun () ->
        let image = Record.encode ~kind:Record.Advf "p" in
        (match Record.decode_expect ~kind:Record.Campaign image with
        | Error
            (Record.Kind_mismatch
               { expected = Record.Campaign; got = Record.Advf }) ->
          ()
        | _ -> Alcotest.fail "kind mismatch not detected");
        match Record.decode_expect ~kind:Record.Advf image with
        | Ok "p" -> ()
        | _ -> Alcotest.fail "right kind rejected");
    Alcotest.test_case "fnv1a64 matches the published test vectors" `Quick
      (fun () ->
        Alcotest.(check string)
          "empty" "cbf29ce484222325"
          (Record.fnv1a64_hex "");
        Alcotest.(check string) "a" "af63dc4c8601ec8c" (Record.fnv1a64_hex "a");
        Alcotest.(check string)
          "foobar" "85944171f73967e8"
          (Record.fnv1a64_hex "foobar"));
  ]

(* ---------------------------------------------------------------- *)
(* LRU *)

let lru_tests =
  [
    Alcotest.test_case "entry bound evicts the least recently used" `Quick
      (fun () ->
        let l = Lru.create ~max_entries:3 ~max_bytes:1_000_000 in
        List.iter (fun k -> Lru.add l k k) [ "a"; "b"; "c" ];
        ignore (Lru.find l "a");
        (* recency now b < c < a *)
        Lru.add l "d" "d";
        Alcotest.(check bool) "b evicted" false (Lru.mem l "b");
        Alcotest.(check bool) "a promoted by find" true (Lru.mem l "a");
        Alcotest.(check int) "bounded" 3 (Lru.length l);
        Alcotest.(check int) "evictions counted" 1 (Lru.evictions l));
    Alcotest.test_case "byte bound evicts until the new entry fits" `Quick
      (fun () ->
        let l = Lru.create ~max_entries:100 ~max_bytes:10 in
        Lru.add l "a" "aaaa";
        Lru.add l "b" "bbbb";
        Lru.add l "c" "cccc";
        Alcotest.(check bool) "a evicted" false (Lru.mem l "a");
        Alcotest.(check bool) "within bound" true (Lru.bytes l <= 10));
    Alcotest.test_case "oversized payloads are not admitted" `Quick (fun () ->
        let l = Lru.create ~max_entries:4 ~max_bytes:8 in
        Lru.add l "small" "1234";
        Lru.add l "big" (String.make 64 'x');
        Alcotest.(check bool) "big absent" false (Lru.mem l "big");
        Alcotest.(check bool) "small survives" true (Lru.mem l "small"));
    Alcotest.test_case "replace updates bytes, not entry count" `Quick
      (fun () ->
        let l = Lru.create ~max_entries:4 ~max_bytes:100 in
        Lru.add l "k" "1234";
        Lru.add l "k" "123456";
        Alcotest.(check int) "one entry" 1 (Lru.length l);
        Alcotest.(check int) "new size" 6 (Lru.bytes l));
  ]

(* ---------------------------------------------------------------- *)
(* Keys *)

let key_tests =
  [
    Alcotest.test_case "of_parts is stable and order-sensitive" `Quick
      (fun () ->
        let k = Key.of_parts [ ("a", "1"); ("b", "2") ] in
        Alcotest.(check string)
          "stable" (Key.to_hex k)
          (Key.to_hex (Key.of_parts [ ("a", "1"); ("b", "2") ]));
        Alcotest.(check bool)
          "value matters" false
          (Key.to_hex k = Key.to_hex (Key.of_parts [ ("a", "1"); ("b", "3") ]));
        Alcotest.(check int) "md5 hex" 32 (String.length (Key.to_hex k)));
    Alcotest.test_case "advf keys separate object and options" `Quick
      (fun () ->
        let p = program () in
        let base = Key.advf ~program:p ~object_name:obj
            ~options:Model.default_options in
        Alcotest.(check string)
          "deterministic" (Key.to_hex base)
          (Key.to_hex
             (Key.advf ~program:p ~object_name:obj
                ~options:Model.default_options));
        let other_obj =
          Key.advf ~program:p ~object_name:"m_delv_zeta"
            ~options:Model.default_options
        in
        let other_k =
          Key.advf ~program:p ~object_name:obj
            ~options:{ Model.default_options with Model.k = 7 }
        in
        Alcotest.(check bool) "object in key" false
          (Key.to_hex base = Key.to_hex other_obj);
        Alcotest.(check bool) "options in key" false
          (Key.to_hex base = Key.to_hex other_k));
    Alcotest.test_case "campaign keys follow the plan hash" `Quick (fun () ->
        let c = ctx () and p = program () in
        let plan seed = Plan.make ~seed ~ci_width:0.05 c ~objects:[ obj ] in
        Alcotest.(check bool)
          "seed changes the key" false
          (Key.to_hex (Key.campaign ~program:p ~plan:(plan 1))
          = Key.to_hex (Key.campaign ~program:p ~plan:(plan 2))))
  ]

(* ---------------------------------------------------------------- *)
(* Store *)

let store_tests =
  [
    Alcotest.test_case "put/get roundtrip: memory, then disk on a fresh \
                        handle" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let key = Key.of_parts [ ("t", "roundtrip") ] in
        Store.put s ~key ~kind:Record.Advf "payload-bytes";
        (match Store.get s ~key ~kind:Record.Advf with
        | Some ("payload-bytes", Store.Memory) -> ()
        | _ -> Alcotest.fail "expected a memory hit");
        let s2 = Store.open_store ~dir () in
        (match Store.get s2 ~key ~kind:Record.Advf with
        | Some ("payload-bytes", Store.Disk) -> ()
        | _ -> Alcotest.fail "expected a disk hit");
        match Store.get s2 ~key ~kind:Record.Advf with
        | Some ("payload-bytes", Store.Memory) -> ()
        | _ -> Alcotest.fail "disk hit should promote into the LRU");
    Alcotest.test_case "corrupted entries are detected and healed by \
                        deletion" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let key = Key.of_parts [ ("t", "corrupt") ] in
        Store.put s ~key ~kind:Record.Advf "precious";
        let path = entry_path dir key in
        flip_byte path (Record.header_bytes);
        let s2 = Store.open_store ~dir () in
        (match Store.lookup s2 ~key ~kind:Record.Advf with
        | Store.Corrupted -> ()
        | _ -> Alcotest.fail "corruption not detected");
        Alcotest.(check bool) "entry deleted" false (Sys.file_exists path);
        Alcotest.(check int) "counted" 1 (Store.stat s2).Store.corrupt);
    Alcotest.test_case "a record of the wrong kind is corruption too" `Quick
      (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let key = Key.of_parts [ ("t", "kind") ] in
        Store.put s ~key ~kind:Record.Tape "tape-bytes";
        let s2 = Store.open_store ~dir () in
        match Store.lookup s2 ~key ~kind:Record.Advf with
        | Store.Corrupted -> ()
        | _ -> Alcotest.fail "kind mismatch not treated as corruption");
    Alcotest.test_case "gc sweeps torn tmp files and cold entries, never a \
                        live key" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let live = Key.of_parts [ ("t", "live") ] in
        Store.put s ~key:live ~kind:Record.Advf "live-payload";
        (* a cold entry: written by some other process's handle *)
        let cold = Key.of_parts [ ("t", "cold") ] in
        Store.put (Store.open_store ~dir ()) ~key:cold ~kind:Record.Advf "cold";
        (* a torn write: a stray file under tmp/ *)
        let torn = Filename.concat (Filename.concat dir "tmp") "dead.123.1" in
        let oc = open_out torn in
        output_string oc "half a rec";
        close_out oc;
        (* negative age: everything is "old enough", so only liveness
           protects *)
        let removed = Store.gc s ~max_age_s:(-1.0) () in
        Alcotest.(check int) "torn + cold removed" 2 removed;
        Alcotest.(check bool) "torn gone" false (Sys.file_exists torn);
        Alcotest.(check bool)
          "cold gone" false
          (Sys.file_exists (entry_path dir cold));
        (match Store.get s ~key:live ~kind:Record.Advf with
        | Some ("live-payload", _) -> ()
        | _ -> Alcotest.fail "gc deleted a live key");
        let removed = Store.gc s () in
        Alcotest.(check int) "ageless gc only sweeps tmp" 0 removed);
  ]

(* ---------------------------------------------------------------- *)
(* Query: get-or-compute, byte identity, corruption recompute *)

let query_tests =
  [
    Alcotest.test_case "advf query: computed once, then served, always the \
                        same bytes" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let direct = Query.advf_payload (ctx ()) ~object_name:obj in
        let q () =
          Query.advf s ~ctx ~program:(program ()) ~object_name:obj ()
        in
        let p1, st1 = q () in
        Alcotest.(check bool) "cold: computed" true (st1 = Query.Computed);
        Alcotest.(check string) "equals a direct computation" direct p1;
        let p2, st2 = q () in
        Alcotest.(check bool) "warm: memory hit" true (st2 = Query.Memory_hit);
        Alcotest.(check string) "identical bytes" p1 p2;
        let s2 = Store.open_store ~dir () in
        let p3, st3 =
          Query.advf s2 ~ctx ~program:(program ()) ~object_name:obj ()
        in
        Alcotest.(check bool) "fresh handle: disk hit" true
          (st3 = Query.Disk_hit);
        Alcotest.(check string) "identical bytes from disk" p1 p3);
    Alcotest.test_case "a corrupted entry is recomputed to identical bytes"
      `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let p1, _ =
          Query.advf s ~ctx ~program:(program ()) ~object_name:obj ()
        in
        let key =
          Key.advf ~program:(program ()) ~object_name:obj
            ~options:Model.default_options
        in
        let path = entry_path dir key in
        flip_byte path (Record.header_bytes + 3);
        let s2 = Store.open_store ~dir () in
        let p2, st =
          Query.advf s2 ~ctx ~program:(program ()) ~object_name:obj ()
        in
        Alcotest.(check bool) "recomputed (healing)" true
          (st = Query.Recomputed);
        Alcotest.(check string) "identical bytes after healing" p1 p2;
        let p3, st3 =
          Query.advf s2 ~ctx ~program:(program ()) ~object_name:obj ()
        in
        Alcotest.(check bool) "healed entry serves again" true
          (Query.is_hit st3);
        Alcotest.(check string) "same bytes" p1 p3);
    Alcotest.test_case "campaign query: run, store, serve; interrupted runs \
                        stay un-stored and resume" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let c = ctx () and p = program () in
        let plan = Plan.make ~seed:7 ~ci_width:0.05 ~batch:37 c
            ~objects:[ obj ] in
        (* drain immediately: the engine must stop at the first batch
           boundary, leave its journal, and the result must not be
           stored *)
        let payload_i, st_i, r_i =
          Query.campaign s ~should_stop:(fun () -> true)
            ~ctx:(fun () -> c)
            ~program:p ~plan ()
        in
        ignore payload_i;
        Alcotest.(check bool) "interrupted: computed, not served" true
          (st_i = Query.Computed);
        (match r_i with
        | Some r ->
          Alcotest.(check bool) "marked interrupted" true
            (Array.exists
               (fun (o : Engine.object_result) ->
                 o.Engine.stopped = Engine.Interrupted)
               r.Engine.objects)
        | None -> Alcotest.fail "interrupted run must return its result");
        let key = Key.campaign ~program:p ~plan in
        Alcotest.(check bool) "not stored" true
          (Store.get s ~key ~kind:Record.Campaign = None);
        let journal =
          Filename.concat (Store.journal_dir s) (Key.to_hex key ^ ".journal")
        in
        Alcotest.(check bool) "journal left for resume" true
          (Sys.file_exists journal);
        (* next attempt resumes the journal and completes *)
        let payload, st, r =
          Query.campaign s ~ctx:(fun () -> c) ~program:p ~plan ()
        in
        Alcotest.(check bool) "completed: computed" true (st = Query.Computed);
        (match r with
        | Some r ->
          Alcotest.(check string) "payload is the stable report" payload
            (Query.campaign_payload r)
        | None -> Alcotest.fail "completing run must return its result");
        Alcotest.(check bool) "journal cleaned up" false
          (Sys.file_exists journal);
        (* a kill/resume chain is bit-identical to an uninterrupted run *)
        let direct = Query.campaign_payload (Engine.run c plan) in
        Alcotest.(check string) "identical to an uninterrupted run" direct
          payload;
        (* and now it serves from the store, with no engine result *)
        let payload2, st2, r2 =
          Query.campaign s ~ctx:(fun () -> c) ~program:p ~plan ()
        in
        Alcotest.(check bool) "served" true (Query.is_hit st2);
        Alcotest.(check bool) "no recomputation" true (r2 = None);
        Alcotest.(check string) "served bytes" payload payload2);
    Alcotest.test_case "tape query roundtrips the packed golden tape" `Quick
      (fun () ->
        let dir = tmp_store_dir () in
        let s = Store.open_store ~dir () in
        let c = ctx () and p = program () in
        let t1, st1 = Query.tape s ~ctx:(fun () -> c) ~program:p
            ~entry:"main" () in
        Alcotest.(check bool) "cold: computed" true (st1 = Query.Computed);
        let t2, st2 = Query.tape s ~ctx:(fun () -> c) ~program:p
            ~entry:"main" () in
        Alcotest.(check bool) "warm: hit" true (Query.is_hit st2);
        Alcotest.(check int) "same length"
          (Moard_trace.Tape.length t1)
          (Moard_trace.Tape.length t2);
        Alcotest.(check int) "same packed size"
          (Moard_trace.Tape.packed_bytes t1)
          (Moard_trace.Tape.packed_bytes t2));
  ]

let suite =
  [
    ("store.record", record_tests);
    ("store.lru", lru_tests);
    ("store.key", key_tests);
    ("store.store", store_tests);
    ("store.query", query_tests);
  ]
