(* The bit-parallel masking kernel and everything built on it must agree
   with the scalar oracle exactly.

   Three layers of differential checks:
   - Masking.analyze_all against 64 scalar Masking.analyze calls, over a
     QCheck-random program touching every integer opcode with a closed
     form plus the fallback ones (floats, division, dynamic shifts,
     comparisons feeding branches, geps, casts, stores);
   - Exhaustive.campaign with and without the kernel: identical outcome
     counts, near-zero real executions batched;
   - Model.analyze and Engine.run with and without the kernel: identical
     reports and payloads byte for byte. *)

module Masking = Moard_core.Masking
module Verdict = Moard_core.Verdict
module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Consume = Moard_trace.Consume
module Context = Moard_inject.Context
module Exhaustive = Moard_inject.Exhaustive
module Resolve = Moard_inject.Resolve
module Outcome = Moard_inject.Outcome
module Errmodel = Moard_bits.Errmodel
module Pattern = Moard_bits.Pattern
module Ps = Moard_bits.Patternset
module B = Moard_bits.Bitval
module Ast = Moard_lang.Ast
open Tutil

let model_name = Errmodel.to_string

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* One program consuming the traced globals through (nearly) every opcode
   the kernel special-cases, plus representatives of the fallback family.
   [x]/[y] drive the integer ops, [xf]/[yf] the float ops, [sh] the
   static shift amounts (including out-of-range), [idx] an in-bounds
   element index consumed by a gep. *)
let prog ~x ~y ~xf ~yf ~sh ~idx =
  let ynz = if Int64.equal y 0L then 1L else y in
  let open Ast.Dsl in
  trace_program
    [
      garr_i64_init "g" [| x |];
      garr_f64_init "gf" [| xf |];
      garr_i64_init "ix" [| Int64.of_int idx |];
      garr_f64_init "arr" [| 1.0; 2.0; 3.0; 4.0 |];
      garr_i64 "oi" 12;
      garr_i32 "o32" 1;
      garr_f64 "ofl" 6;
    ]
    [
      fn "main"
        [
          ("oi".%(i 0) <- "g".%(i 0) land i64 y);
          ("oi".%(i 1) <- "g".%(i 0) lor i64 y);
          ("oi".%(i 2) <- "g".%(i 0) lxor i64 y);
          ("oi".%(i 3) <- "g".%(i 0) + i64 y);
          ("oi".%(i 4) <- "g".%(i 0) - i64 y);
          ("oi".%(i 5) <- "g".%(i 0) * i64 y);
          ("oi".%(i 6) <- "g".%(i 0) lsl i sh);
          ("oi".%(i 7) <- "g".%(i 0) lsr i sh);
          ("oi".%(i 8) <- "g".%(i 0) asr i sh);
          (* dynamic shift amount: slot-1 consumption, scalar fallback *)
          ("oi".%(i 9) <- i64 y lsl ("g".%(i 0) land i 63));
          ("oi".%(i 10) <- "g".%(i 0) / i64 ynz);
          ("oi".%(i 11) <- "g".%(i 0) % i64 ynz);
          (* i32 store truncates: Trunc_to_i32 consumption *)
          ("o32".%(i 0) <- "g".%(i 0));
          ("ofl".%(i 0) <- "gf".%(i 0) + f yf);
          ("ofl".%(i 1) <- "gf".%(i 0) * f yf);
          (* gep indexed by a traced value *)
          ("ofl".%(i 2) <- "arr".%("ix".%(i 0)));
          flt_ "acc" (f 0.0);
          when_ ("g".%(i 0) == i64 y) [ "acc" <-- f 1.0 ];
          when_ ("g".%(i 0) != i64 y) [ "acc" <-- v "acc" + f 2.0 ];
          when_ ("g".%(i 0) < i64 y) [ "acc" <-- v "acc" + f 4.0 ];
          ("ofl".%(i 3) <- v "acc");
          ("ofl".%(i 4) <- to_f ("g".%(i 0)));
          ("ofl".%(i 5) <- "gf".%(i 0) - f yf);
          ret_void;
        ];
    ]

let pp_verdict = function
  | Masking.Masked k -> "masked:" ^ Verdict.kind_name k
  | Masking.Changed _ -> "changed"
  | Masking.Crash_certain _ -> "crash"
  | Masking.Divergent -> "divergent"

(* analyze_all must agree with the scalar oracle on every lane of every
   read site, for every error model: same classification, same mask kind,
   same per-lane trap, and the same Changed payload (output value and
   overshadow flag). *)
let check_site ~model tape (s : Consume.t) =
  let e = event_of tape s in
  let v = Masking.analyze_all ~model e s.Consume.kind in
  if v.Masking.width <> s.Consume.width then
    Alcotest.failf "width mismatch at event %d" s.Consume.event_idx;
  let n = v.Masking.lanes in
  if n <> Errmodel.lanes model s.Consume.width then
    Alcotest.failf "lane count mismatch at event %d" s.Consume.event_idx;
  (* the four sets partition the full lane set *)
  let all =
    Ps.union
      (Ps.union v.Masking.masked v.Masking.crash)
      (Ps.union v.Masking.divergent v.Masking.changed)
  in
  if not (Ps.equal all (Ps.full_n ~n)) then
    Alcotest.failf "[%s] verdict sets do not cover at event %d"
      (model_name model) s.Consume.event_idx;
  if
    Ps.count v.Masking.masked + Ps.count v.Masking.crash
    + Ps.count v.Masking.divergent + Ps.count v.Masking.changed
    <> n
  then
    Alcotest.failf "[%s] verdict sets overlap at event %d" (model_name model)
      s.Consume.event_idx;
  if not (Ps.subset v.Masking.overshadow v.Masking.changed) then
    Alcotest.fail "overshadow must be a subset of changed";
  for b = 0 to n - 1 do
    let pat = Errmodel.pattern_at model s.Consume.width b in
    let scalar = Masking.analyze e s.Consume.kind pat in
    let fail () =
      Alcotest.failf
        "[%s] event %d lane %d: scalar %s vs batched {m=%a c=%a d=%a}"
        (model_name model) s.Consume.event_idx b (pp_verdict scalar) Ps.pp
        v.Masking.masked Ps.pp v.Masking.crash Ps.pp v.Masking.divergent
    in
    match scalar with
    | Masking.Masked k ->
      if not (Ps.mem v.Masking.masked b) then fail ();
      if v.Masking.mask_kind <> k then
        Alcotest.failf "[%s] event %d lane %d: mask kind %s vs %s"
          (model_name model) s.Consume.event_idx b (Verdict.kind_name k)
          (Verdict.kind_name v.Masking.mask_kind)
    | Masking.Crash_certain t ->
      if not (Ps.mem v.Masking.crash b) then fail ();
      if Masking.trap_of_lane v b <> t then
        Alcotest.failf "[%s] event %d lane %d: trap differs"
          (model_name model) s.Consume.event_idx b
    | Masking.Divergent -> if not (Ps.mem v.Masking.divergent b) then fail ()
    | Masking.Changed { out; overshadow } ->
      if not (Ps.mem v.Masking.changed b) then fail ();
      if Ps.mem v.Masking.overshadow b <> overshadow then
        Alcotest.failf "[%s] event %d lane %d: overshadow flag differs"
          (model_name model) s.Consume.event_idx b;
      let out', overshadow' =
        Masking.changed_out_at ~model e s.Consume.kind ~lane:b
      in
      if out' <> out || overshadow' <> overshadow then
        Alcotest.failf "[%s] event %d lane %d: changed payload differs"
          (model_name model) s.Consume.event_idx b
  done

let gen_inputs =
  QCheck2.Gen.(
    let word =
      oneof [ int64; oneofl [ 0L; 1L; -1L; 2L; 1024L; Int64.min_int ] ]
    in
    let flt =
      oneof [ float; oneofl [ 0.0; 1.0; -0.25; 1e18; 1e-18; Float.nan ] ]
    in
    word >>= fun x ->
    word >>= fun y ->
    flt >>= fun xf ->
    flt >>= fun yf ->
    int_range (-2) 70 >>= fun sh ->
    int_bound 3 >|= fun idx -> (x, y, xf, yf, sh, idx))

let kernel_vs_oracle =
  List.map
    (fun model ->
      qtest
        (Printf.sprintf "analyze_all = per-lane analyze on every opcode [%s]"
           (model_name model))
        gen_inputs
        (fun (x, y, xf, yf, sh, idx) ->
          let m, tape = prog ~x ~y ~xf ~yf ~sh ~idx in
          let checked = ref 0 in
          List.iter
            (fun g ->
              List.iter
                (fun s ->
                  if is_read s then begin
                    check_site ~model tape s;
                    incr checked
                  end)
                (sites m tape g))
            [ "g"; "gf"; "ix" ];
          (* the program consumes every traced global many times *)
          !checked > 10))
    Errmodel.all

(* ---- end-to-end differentials on a small self-contained workload ---- *)

let workload () =
  let open Ast.Dsl in
  workload_of ~targets:[ "a" ] ~outputs:[ "out" ]
    [
      garr_f64_init "a" [| 1.5; -3.0; 0.25; 8.0 |];
      garr_i64_init "n" [| 12L; 3L |];
      garr_f64 "out" 4;
    ]
    [
      fn "main"
        [
          flt_ "acc" (f 0.0);
          for_ "i" (i 0) (i 3)
            [ "acc" <-- v "acc" + ("a".%(v "i") * "a".%(v "i")) ];
          when_ ("n".%(i 0) > i 4) [ "acc" <-- v "acc" + f 1.0 ];
          ("out".%(i 0) <- v "acc");
          ("out".%(i 1) <- "a".%(i 3) - "a".%(i 2));
          ("out".%(i 2) <- to_f ("n".%(i 0) land i 0xF0));
          ("out".%(i 3) <- "a".%(i 1));
          ret_void;
        ];
    ]
    "batched-diff"

let exhaustive_tests =
  List.map
    (fun model ->
      Alcotest.test_case
        (Printf.sprintf "exhaustive: batched = scalar outcomes [%s]"
           (model_name model))
        `Quick
        (fun () ->
          let ctx = Context.make (workload ()) in
          let scan0 = Masking.scan_executions () in
          let b = Exhaustive.campaign ~model ~batch:true ctx ~object_name:"a" in
          Alcotest.(check int)
            "batched sweep never falls into the scalar walk" 0
            (Masking.scan_executions () - scan0);
          let s =
            Exhaustive.campaign ~model ~batch:false ctx ~object_name:"a"
          in
          Alcotest.(check int) "sites" s.Exhaustive.sites b.Exhaustive.sites;
          Alcotest.(check int) "injections" s.Exhaustive.injections
            b.Exhaustive.injections;
          Alcotest.(check int) "same" s.Exhaustive.same b.Exhaustive.same;
          Alcotest.(check int) "acceptable" s.Exhaustive.acceptable
            b.Exhaustive.acceptable;
          Alcotest.(check int) "incorrect" s.Exhaustive.incorrect
            b.Exhaustive.incorrect;
          Alcotest.(check int) "crashed" s.Exhaustive.crashed
            b.Exhaustive.crashed;
          Alcotest.(check (float 0.0)) "success rate"
            s.Exhaustive.success_rate b.Exhaustive.success_rate;
          if
            model = Errmodel.Single_bit
            && b.Exhaustive.runs >= s.Exhaustive.runs
          then
            Alcotest.failf "kernel saved no executions (%d vs %d)"
              b.Exhaustive.runs s.Exhaustive.runs))
    Errmodel.all
  @ [
      Alcotest.test_case "resolve restricted to a lane subset agrees" `Quick
        (fun () ->
          let ctx = Context.make (workload ()) in
          let site =
            List.find is_read
              (Consume.of_tape (Context.tape ctx)
                 (Context.object_of ctx "a"))
          in
          let all = Resolve.site ctx site in
          let lanes = Ps.add (Ps.add (Ps.add Ps.empty 0) 17) 63 in
          let sub = Resolve.site ~lanes ctx site in
          Ps.iter
            (fun b ->
              if sub.(b) <> all.(b) then
                Alcotest.failf "lane %d differs under restriction" b)
            lanes);
    ]

let report_str r = Format.asprintf "%a" Advf.pp_report r

let model_tests =
  List.map
    (fun model ->
      Alcotest.test_case
        (Printf.sprintf "model: batched report = scalar report [%s]"
           (model_name model))
        `Quick
        (fun () ->
          let ctx = Context.make (workload ()) in
          let opts cache batch =
            { Model.default_options with Model.use_cache = cache; batch; model }
          in
          List.iter
            (fun cache ->
              let b =
                Model.analyze
                  ~options:(opts cache true)
                  (Context.shard ctx) ~object_name:"a"
              in
              let s =
                Model.analyze
                  ~options:(opts cache false)
                  (Context.shard ctx) ~object_name:"a"
              in
              Alcotest.(check string)
                (Printf.sprintf "report (cache=%b)" cache)
                (report_str s) (report_str b))
            [ true; false ]))
    Errmodel.all
  @ [
    Alcotest.test_case "model: multi-bit patterns force the scalar walk"
      `Quick (fun () ->
        let ctx = Context.make (workload ()) in
        let opts batch =
          { Model.default_options with Model.multi = [ `Burst 2 ]; batch }
        in
        (* batch is documented as ignored when multi is non-empty: the two
           runs must take the identical (scalar) path *)
        let b =
          Model.analyze ~options:(opts true) (Context.shard ctx)
            ~object_name:"a"
        in
        let s =
          Model.analyze ~options:(opts false) (Context.shard ctx)
            ~object_name:"a"
        in
        Alcotest.(check string) "multi report" (report_str s) (report_str b));
  ]

module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine

let engine_tests =
  List.map
    (fun model ->
      Alcotest.test_case
        (Printf.sprintf "campaign: batched = scalar payload bytes [%s]"
           (model_name model))
        `Quick
        (fun () ->
          let ctx = Context.make (workload ()) in
          let plan =
            Plan.make ~model ~seed:7 ~ci_width:0.04 ctx ~objects:[ "a" ]
          in
          let b = Engine.run ~batch:true ctx plan in
          let s = Engine.run ~batch:false ctx plan in
          Alcotest.(check string) "stable payload"
            (Moard_store.Query.campaign_payload s)
            (Moard_store.Query.campaign_payload b)))
    Errmodel.all

module Registry = Moard_kernels.Registry

(* Full-registry differential: every benchmark object in Table I analyzed
   batched and scalar under every error model must produce byte-identical
   reports, and the batched runs must never fall into the scalar walk.
   This is the in-tree twin of the CI kernel smoke job. *)
let registry_tests =
  List.map
    (fun model ->
      Alcotest.test_case
        (Printf.sprintf "registry: batched = scalar reports [%s]"
           (model_name model))
        `Slow
        (fun () ->
          let opts batch =
            { Model.default_options with Model.fi_budget = 500; batch; model }
          in
          List.iter
            (fun (e : Registry.entry) ->
              let ctx = Context.make (e.Registry.workload ()) in
              List.iter
                (fun obj ->
                  let scan0 = Masking.scan_executions () in
                  let b =
                    Model.analyze ~options:(opts true) (Context.shard ctx)
                      ~object_name:obj
                  in
                  let scans = Masking.scan_executions () - scan0 in
                  if scans <> 0 then
                    Alcotest.failf
                      "%s/%s [%s]: %d scalar-walk executions on the batched \
                       path"
                      e.Registry.benchmark obj (model_name model) scans;
                  let s =
                    Model.analyze ~options:(opts false) (Context.shard ctx)
                      ~object_name:obj
                  in
                  Alcotest.(check string)
                    (Printf.sprintf "%s/%s" e.Registry.benchmark obj)
                    (report_str s) (report_str b))
                e.Registry.objects)
            Registry.table1))
    Errmodel.all

let suite =
  [
    ("batched.kernel-vs-oracle", kernel_vs_oracle);
    ("batched.exhaustive", exhaustive_tests);
    ("batched.model", model_tests);
    ("batched.engine", engine_tests);
    ("batched.registry", registry_tests);
  ]
