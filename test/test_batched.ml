(* The bit-parallel masking kernel and everything built on it must agree
   with the scalar oracle exactly.

   Three layers of differential checks:
   - Masking.analyze_all against 64 scalar Masking.analyze calls, over a
     QCheck-random program touching every integer opcode with a closed
     form plus the fallback ones (floats, division, dynamic shifts,
     comparisons feeding branches, geps, casts, stores);
   - Exhaustive.campaign with and without the kernel: identical outcome
     counts, near-zero real executions batched;
   - Model.analyze and Engine.run with and without the kernel: identical
     reports and payloads byte for byte. *)

module Masking = Moard_core.Masking
module Verdict = Moard_core.Verdict
module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Consume = Moard_trace.Consume
module Context = Moard_inject.Context
module Exhaustive = Moard_inject.Exhaustive
module Resolve = Moard_inject.Resolve
module Outcome = Moard_inject.Outcome
module Pattern = Moard_bits.Pattern
module Ps = Moard_bits.Patternset
module B = Moard_bits.Bitval
module Ast = Moard_lang.Ast
open Tutil

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* One program consuming the traced globals through (nearly) every opcode
   the kernel special-cases, plus representatives of the fallback family.
   [x]/[y] drive the integer ops, [xf]/[yf] the float ops, [sh] the
   static shift amounts (including out-of-range), [idx] an in-bounds
   element index consumed by a gep. *)
let prog ~x ~y ~xf ~yf ~sh ~idx =
  let ynz = if Int64.equal y 0L then 1L else y in
  let open Ast.Dsl in
  trace_program
    [
      garr_i64_init "g" [| x |];
      garr_f64_init "gf" [| xf |];
      garr_i64_init "ix" [| Int64.of_int idx |];
      garr_f64_init "arr" [| 1.0; 2.0; 3.0; 4.0 |];
      garr_i64 "oi" 12;
      garr_i32 "o32" 1;
      garr_f64 "ofl" 6;
    ]
    [
      fn "main"
        [
          ("oi".%(i 0) <- "g".%(i 0) land i64 y);
          ("oi".%(i 1) <- "g".%(i 0) lor i64 y);
          ("oi".%(i 2) <- "g".%(i 0) lxor i64 y);
          ("oi".%(i 3) <- "g".%(i 0) + i64 y);
          ("oi".%(i 4) <- "g".%(i 0) - i64 y);
          ("oi".%(i 5) <- "g".%(i 0) * i64 y);
          ("oi".%(i 6) <- "g".%(i 0) lsl i sh);
          ("oi".%(i 7) <- "g".%(i 0) lsr i sh);
          ("oi".%(i 8) <- "g".%(i 0) asr i sh);
          (* dynamic shift amount: slot-1 consumption, scalar fallback *)
          ("oi".%(i 9) <- i64 y lsl ("g".%(i 0) land i 63));
          ("oi".%(i 10) <- "g".%(i 0) / i64 ynz);
          ("oi".%(i 11) <- "g".%(i 0) % i64 ynz);
          (* i32 store truncates: Trunc_to_i32 consumption *)
          ("o32".%(i 0) <- "g".%(i 0));
          ("ofl".%(i 0) <- "gf".%(i 0) + f yf);
          ("ofl".%(i 1) <- "gf".%(i 0) * f yf);
          (* gep indexed by a traced value *)
          ("ofl".%(i 2) <- "arr".%("ix".%(i 0)));
          flt_ "acc" (f 0.0);
          when_ ("g".%(i 0) == i64 y) [ "acc" <-- f 1.0 ];
          when_ ("g".%(i 0) != i64 y) [ "acc" <-- v "acc" + f 2.0 ];
          when_ ("g".%(i 0) < i64 y) [ "acc" <-- v "acc" + f 4.0 ];
          ("ofl".%(i 3) <- v "acc");
          ("ofl".%(i 4) <- to_f ("g".%(i 0)));
          ("ofl".%(i 5) <- "gf".%(i 0) - f yf);
          ret_void;
        ];
    ]

let pp_verdict = function
  | Masking.Masked k -> "masked:" ^ Verdict.kind_name k
  | Masking.Changed _ -> "changed"
  | Masking.Crash_certain _ -> "crash"
  | Masking.Divergent -> "divergent"

(* analyze_all must agree with the scalar oracle on every bit of every
   read site: same classification, same mask kind, same trap, and the
   same Changed payload (output value and overshadow flag). *)
let check_site tape (s : Consume.t) =
  let e = event_of tape s in
  let v = Masking.analyze_all e s.Consume.kind in
  if v.Masking.width <> s.Consume.width then
    Alcotest.failf "width mismatch at event %d" s.Consume.event_idx;
  let n = B.bits_in v.Masking.width in
  (* the four sets partition the full set *)
  let all =
    Ps.union
      (Ps.union v.Masking.masked v.Masking.crash)
      (Ps.union v.Masking.divergent v.Masking.changed)
  in
  if not (Ps.equal all (Ps.full ~width:v.Masking.width)) then
    Alcotest.failf "verdict sets do not cover at event %d" s.Consume.event_idx;
  if
    Ps.count v.Masking.masked + Ps.count v.Masking.crash
    + Ps.count v.Masking.divergent + Ps.count v.Masking.changed
    <> n
  then Alcotest.failf "verdict sets overlap at event %d" s.Consume.event_idx;
  if not (Ps.subset v.Masking.overshadow v.Masking.changed) then
    Alcotest.fail "overshadow must be a subset of changed";
  for b = 0 to n - 1 do
    let scalar = Masking.analyze e s.Consume.kind (Pattern.Single b) in
    let fail () =
      Alcotest.failf "event %d bit %d: scalar %s vs batched {m=%a c=%a d=%a}"
        s.Consume.event_idx b (pp_verdict scalar) Ps.pp v.Masking.masked Ps.pp
        v.Masking.crash Ps.pp v.Masking.divergent
    in
    match scalar with
    | Masking.Masked k ->
      if not (Ps.mem v.Masking.masked b) then fail ();
      if v.Masking.mask_kind <> k then
        Alcotest.failf "event %d bit %d: mask kind %s vs %s"
          s.Consume.event_idx b (Verdict.kind_name k)
          (Verdict.kind_name v.Masking.mask_kind)
    | Masking.Crash_certain t ->
      if not (Ps.mem v.Masking.crash b) then fail ();
      if v.Masking.trap <> Some t then
        Alcotest.failf "event %d bit %d: trap differs" s.Consume.event_idx b
    | Masking.Divergent -> if not (Ps.mem v.Masking.divergent b) then fail ()
    | Masking.Changed { out; overshadow } ->
      if not (Ps.mem v.Masking.changed b) then fail ();
      if Ps.mem v.Masking.overshadow b <> overshadow then
        Alcotest.failf "event %d bit %d: overshadow flag differs"
          s.Consume.event_idx b;
      let out', overshadow' =
        Masking.changed_out_at e s.Consume.kind ~bit:b
      in
      if out' <> out || overshadow' <> overshadow then
        Alcotest.failf "event %d bit %d: changed payload differs"
          s.Consume.event_idx b
  done

let gen_inputs =
  QCheck2.Gen.(
    let word =
      oneof [ int64; oneofl [ 0L; 1L; -1L; 2L; 1024L; Int64.min_int ] ]
    in
    let flt =
      oneof [ float; oneofl [ 0.0; 1.0; -0.25; 1e18; 1e-18; Float.nan ] ]
    in
    word >>= fun x ->
    word >>= fun y ->
    flt >>= fun xf ->
    flt >>= fun yf ->
    int_range (-2) 70 >>= fun sh ->
    int_bound 3 >|= fun idx -> (x, y, xf, yf, sh, idx))

let kernel_vs_oracle =
  [
    qtest "analyze_all = 64x analyze on every opcode" gen_inputs
      (fun (x, y, xf, yf, sh, idx) ->
        let m, tape = prog ~x ~y ~xf ~yf ~sh ~idx in
        let checked = ref 0 in
        List.iter
          (fun g ->
            List.iter
              (fun s ->
                if is_read s then begin
                  check_site tape s;
                  incr checked
                end)
              (sites m tape g))
          [ "g"; "gf"; "ix" ];
        (* the program consumes every traced global many times *)
        !checked > 10);
  ]

(* ---- end-to-end differentials on a small self-contained workload ---- *)

let workload () =
  let open Ast.Dsl in
  workload_of ~targets:[ "a" ] ~outputs:[ "out" ]
    [
      garr_f64_init "a" [| 1.5; -3.0; 0.25; 8.0 |];
      garr_i64_init "n" [| 12L; 3L |];
      garr_f64 "out" 4;
    ]
    [
      fn "main"
        [
          flt_ "acc" (f 0.0);
          for_ "i" (i 0) (i 3)
            [ "acc" <-- v "acc" + ("a".%(v "i") * "a".%(v "i")) ];
          when_ ("n".%(i 0) > i 4) [ "acc" <-- v "acc" + f 1.0 ];
          ("out".%(i 0) <- v "acc");
          ("out".%(i 1) <- "a".%(i 3) - "a".%(i 2));
          ("out".%(i 2) <- to_f ("n".%(i 0) land i 0xF0));
          ("out".%(i 3) <- "a".%(i 1));
          ret_void;
        ];
    ]
    "batched-diff"

let exhaustive_tests =
  [
    Alcotest.test_case "exhaustive: batched = scalar outcomes, fewer runs"
      `Quick (fun () ->
        let ctx = Context.make (workload ()) in
        let b = Exhaustive.campaign ~batch:true ctx ~object_name:"a" in
        let s = Exhaustive.campaign ~batch:false ctx ~object_name:"a" in
        Alcotest.(check int) "sites" s.Exhaustive.sites b.Exhaustive.sites;
        Alcotest.(check int) "injections" s.Exhaustive.injections
          b.Exhaustive.injections;
        Alcotest.(check int) "same" s.Exhaustive.same b.Exhaustive.same;
        Alcotest.(check int) "acceptable" s.Exhaustive.acceptable
          b.Exhaustive.acceptable;
        Alcotest.(check int) "incorrect" s.Exhaustive.incorrect
          b.Exhaustive.incorrect;
        Alcotest.(check int) "crashed" s.Exhaustive.crashed
          b.Exhaustive.crashed;
        Alcotest.(check (float 0.0)) "success rate"
          s.Exhaustive.success_rate b.Exhaustive.success_rate;
        if b.Exhaustive.runs >= s.Exhaustive.runs then
          Alcotest.failf "kernel saved no executions (%d vs %d)"
            b.Exhaustive.runs s.Exhaustive.runs);
    Alcotest.test_case "resolve restricted to a bit subset agrees" `Quick
      (fun () ->
        let ctx = Context.make (workload ()) in
        let site =
          List.find is_read
            (Consume.of_tape (Context.tape ctx)
               (Context.object_of ctx "a"))
        in
        let all = Resolve.site ctx site in
        let bits = Ps.add (Ps.add (Ps.add Ps.empty 0) 17) 63 in
        let sub = Resolve.site ~bits ctx site in
        Ps.iter
          (fun b ->
            if sub.(b) <> all.(b) then
              Alcotest.failf "bit %d differs under restriction" b)
          bits);
  ]

let report_str r = Format.asprintf "%a" Advf.pp_report r

let model_tests =
  [
    Alcotest.test_case "model: batched report = scalar report" `Quick
      (fun () ->
        let ctx = Context.make (workload ()) in
        let opts cache batch =
          { Model.default_options with Model.use_cache = cache; batch }
        in
        List.iter
          (fun cache ->
            let b =
              Model.analyze
                ~options:(opts cache true)
                (Context.shard ctx) ~object_name:"a"
            in
            let s =
              Model.analyze
                ~options:(opts cache false)
                (Context.shard ctx) ~object_name:"a"
            in
            Alcotest.(check string)
              (Printf.sprintf "report (cache=%b)" cache)
              (report_str s) (report_str b))
          [ true; false ]);
    Alcotest.test_case "model: multi-bit patterns force the scalar walk"
      `Quick (fun () ->
        let ctx = Context.make (workload ()) in
        let opts batch =
          { Model.default_options with Model.multi = [ `Burst 2 ]; batch }
        in
        (* batch is documented as ignored when multi is non-empty: the two
           runs must take the identical (scalar) path *)
        let b =
          Model.analyze ~options:(opts true) (Context.shard ctx)
            ~object_name:"a"
        in
        let s =
          Model.analyze ~options:(opts false) (Context.shard ctx)
            ~object_name:"a"
        in
        Alcotest.(check string) "multi report" (report_str s) (report_str b));
  ]

module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine

let engine_tests =
  [
    Alcotest.test_case "campaign: batched = scalar payload bytes" `Quick
      (fun () ->
        let ctx = Context.make (workload ()) in
        let plan = Plan.make ~seed:7 ~ci_width:0.04 ctx ~objects:[ "a" ] in
        let b = Engine.run ~batch:true ctx plan in
        let s = Engine.run ~batch:false ctx plan in
        Alcotest.(check string) "stable payload"
          (Moard_store.Query.campaign_payload s)
          (Moard_store.Query.campaign_payload b));
  ]

let suite =
  [
    ("batched.kernel-vs-oracle", kernel_vs_oracle);
    ("batched.exhaustive", exhaustive_tests);
    ("batched.model", model_tests);
    ("batched.engine", engine_tests);
  ]
