(* Differential validation of the campaign engine against ground truth.

   For every registry kernel whose target object has a small fault-site
   population, the exhaustive injector sweeps the entire population and
   gives the exact masking rate. The campaign's confidence interval must
   cover that truth — with a fixed seed this is a deterministic check, not
   a flaky statistical one — and on larger populations the campaign must
   reach its target interval with strictly fewer injections than the
   sweep.

   The same harness cross-checks the MOARD model itself: the aDVF
   prediction must agree with the exhaustive masking rate within a
   documented tolerance. Tolerance: |aDVF - exhaustive| <= 0.05, applied
   only where the model's involvement population is the injectable
   population (no store-destination involvements). Store destinations are
   involvements the model analyzes at operation level but no injector can
   target (DESIGN.md section 9); where they exist (e.g. AMG/ipiv: 8
   involvements over 4 injectable sites) the two quantities measure
   different populations and only the campaign-vs-exhaustive check
   applies. *)

module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Exhaustive = Moard_inject.Exhaustive
module Model = Moard_core.Model
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine

(* Population ceiling for "small enough to sweep exhaustively in a unit
   test". Everything at or under it from the registry is covered; see the
   probe table in DESIGN.md section 9. *)
let small_population = 1024

(* (benchmark, object) pairs under the ceiling, plus whether the model's
   involvement population equals the injectable population (store
   destinations absent), which gates the aDVF comparison. *)
let small_kernels =
  [
    ("SP", "grid_points", `Advf_comparable);
    ("AMG", "ipiv", `Store_dest_involvements);
    ("BT", "grid_points", `Advf_comparable);
    ("LULESH", "m_elemBC", `Advf_comparable);
  ]

let advf_tolerance = 0.05

let ctx_of =
  let cache : (string, Context.t) Hashtbl.t = Hashtbl.create 8 in
  fun bench ->
    match Hashtbl.find_opt cache bench with
    | Some c -> c
    | None ->
      let e = Registry.find bench in
      let c = Context.make (e.Registry.workload ()) in
      Hashtbl.replace cache bench c;
      c

let run_campaign ?(ci_width = 0.05) bench obj =
  let ctx = ctx_of bench in
  let plan = Plan.make ~seed:42 ~ci_width ctx ~objects:[ obj ] in
  (Engine.run ctx plan).Engine.objects.(0)

let check_covers ~what truth (o : Engine.object_result) =
  if truth < o.Engine.lo -. 1e-12 || truth > o.Engine.hi +. 1e-12 then
    Alcotest.failf "%s: exhaustive rate %.6f outside campaign CI [%.6f, %.6f]"
      what truth o.Engine.lo o.Engine.hi

let small_kernel_case (bench, obj, advf_gate) =
  Alcotest.test_case (Printf.sprintf "%s/%s vs exhaustive" bench obj) `Slow
    (fun () ->
      let ctx = ctx_of bench in
      let truth = Exhaustive.campaign ctx ~object_name:obj in
      if truth.Exhaustive.injections > small_population then
        Alcotest.failf "%s/%s no longer small (%d injections): move it out"
          bench obj truth.Exhaustive.injections;
      let o = run_campaign bench obj in
      Alcotest.(check int)
        "campaign and sweep enumerate the same population"
        truth.Exhaustive.injections o.Engine.population;
      check_covers ~what:(bench ^ "/" ^ obj) truth.Exhaustive.success_rate o;
      (* Small populations exhaust before the interval closes; then the
         estimate must be the exact sweep rate, not an approximation. *)
      if o.Engine.stopped = Engine.Exhausted then
        Alcotest.(check (float 1e-9))
          "exhausted campaign reproduces the sweep exactly"
          truth.Exhaustive.success_rate o.Engine.estimate;
      (* Every sweep outcome class is reachable through campaign sampling:
         totals by code must match when the population is exhausted. *)
      (if o.Engine.stopped = Engine.Exhausted then
         let sweep_by_code =
           [|
             truth.Exhaustive.same; truth.Exhaustive.acceptable;
             truth.Exhaustive.incorrect; truth.Exhaustive.crashed;
           |]
         in
         Alcotest.(check (array int)) "outcome histogram matches the sweep"
           sweep_by_code o.Engine.by_code);
      match advf_gate with
      | `Store_dest_involvements -> ()
      | `Advf_comparable ->
        let report = Model.analyze ctx ~object_name:obj in
        let advf = report.Moard_core.Advf.advf in
        if Float.abs (advf -. truth.Exhaustive.success_rate) > advf_tolerance
        then
          Alcotest.failf
            "%s/%s: aDVF %.4f vs exhaustive %.4f exceeds tolerance %.2f"
            bench obj advf truth.Exhaustive.success_rate advf_tolerance)

let sampling_case =
  (* MM/C: 18432-member population. The campaign must reach its target
     interval with strictly fewer injections than the sweep — the whole
     point of statistical fault injection (paper section V). *)
  Alcotest.test_case "MM/C: CI target met with fewer injections than sweep"
    `Slow (fun () ->
      let ctx = ctx_of "MM" in
      let truth = Exhaustive.campaign ctx ~object_name:"C" in
      let o = run_campaign ~ci_width:0.02 "MM" "C" in
      Alcotest.(check bool) "stopped on ci-target" true
        (o.Engine.stopped = Engine.Ci_target);
      if o.Engine.samples >= truth.Exhaustive.injections then
        Alcotest.failf "campaign used %d samples, sweep only %d"
          o.Engine.samples truth.Exhaustive.injections;
      check_covers ~what:"MM/C" truth.Exhaustive.success_rate o;
      (* The model comparison also holds on this kernel despite its store
         -dest involvements: document the margin actually observed. *)
      let report = Model.analyze ctx ~object_name:"C" in
      let advf = report.Moard_core.Advf.advf in
      if Float.abs (advf -. truth.Exhaustive.success_rate) > advf_tolerance
      then
        Alcotest.failf "MM/C: aDVF %.4f vs exhaustive %.4f exceeds %.2f" advf
          truth.Exhaustive.success_rate advf_tolerance)

let coverage_case =
  (* The small set is derived from the registry, not hand-maintained:
     every registry target object at or under the population ceiling must
     appear in [small_kernels], so new tiny kernels cannot silently skip
     differential validation. *)
  Alcotest.test_case "every small registry object is covered" `Slow
    (fun () ->
      List.iter
        (fun (e : Registry.entry) ->
          let ctx = ctx_of e.Registry.benchmark in
          let w = Context.workload ctx in
          List.iter
            (fun obj ->
              let p =
                Moard_campaign.Population.of_tape
                  ~segment:(Context.segment ctx)
                  (Context.tape ctx)
                  (Context.object_of ctx obj)
                  ~object_name:obj
              in
              if
                p.Moard_campaign.Population.total <= small_population
                && not
                     (List.exists
                        (fun (b, o, _) ->
                          b = e.Registry.benchmark && o = obj)
                        small_kernels)
              then
                Alcotest.failf
                  "%s/%s has population %d <= %d but is not in the \
                   differential set"
                  e.Registry.benchmark obj p.Moard_campaign.Population.total
                  small_population)
            w.Moard_inject.Workload.targets)
        Registry.all)

let suite =
  [
    ( "campaign.differential",
      List.map small_kernel_case small_kernels
      @ [ sampling_case; coverage_case ] );
  ]
