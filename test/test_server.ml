(* The moardd serving stack (PR: moardd).

   Layered like the code: the JSON codec, the length-prefixed framing,
   the bounded pool's backpressure, then the daemon end to end over a
   real Unix socket — including the ISSUE's headline contract, that
   concurrent client requests come back byte-identical to a direct
   offline computation. *)

module Jsonx = Moard_server.Jsonx
module Protocol = Moard_server.Protocol
module Pool = Moard_server.Pool
module Daemon = Moard_server.Daemon
module Client = Moard_server.Client
module Store = Moard_store.Store
module Query = Moard_store.Query
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context

(* ---------------------------------------------------------------- *)
(* Jsonx *)

let roundtrip v = Jsonx.parse (Jsonx.to_string v)

let jsonx_tests =
  [
    Alcotest.test_case "print/parse roundtrip" `Quick (fun () ->
        let v =
          Jsonx.Obj
            [
              ("s", Jsonx.Str "a \"quoted\" \\ line\nand\ttabs");
              ("i", Jsonx.Int (-42));
              ("f", Jsonx.Float 1.5);
              ("b", Jsonx.Bool true);
              ("n", Jsonx.Null);
              ("a", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Str "x"; Jsonx.Bool false ]);
              ("o", Jsonx.Obj [ ("nested", Jsonx.Arr []) ]);
            ]
        in
        match roundtrip v with
        | Ok v' -> Alcotest.(check bool) "same value" true (v = v')
        | Error e -> Alcotest.failf "did not parse back: %s" e);
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick (fun () ->
        match Jsonx.parse {|"éA"|} with
        | Ok (Jsonx.Str s) -> Alcotest.(check string) "bytes" "\xc3\xa9A" s
        | _ -> Alcotest.fail "unicode escape rejected");
    Alcotest.test_case "trailing garbage and malformed input are rejected"
      `Quick (fun () ->
        List.iter
          (fun s ->
            match Jsonx.parse s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ "{} x"; "{"; "[1,]"; "\"unterminated"; "nul"; "01x"; "" ]);
    Alcotest.test_case "accessors are total and cross-accept numbers" `Quick
      (fun () ->
        let v = Jsonx.Obj [ ("i", Jsonx.Int 3); ("f", Jsonx.Float 4.0) ] in
        Alcotest.(check (option int))
          "float as int" (Some 4)
          (Jsonx.int (Jsonx.member "f" v));
        Alcotest.(check (option (float 0.0)))
          "int as float" (Some 3.0)
          (Jsonx.float (Jsonx.member "i" v));
        Alcotest.(check (option string))
          "missing member" None
          (Jsonx.str (Jsonx.member "nope" v)));
  ]

(* ---------------------------------------------------------------- *)
(* Protocol framing over a socketpair *)

let protocol_tests =
  [
    Alcotest.test_case "header and payload frames cross a socketpair" `Quick
      (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close a with Unix.Unix_error _ -> ());
            Unix.close b)
          (fun () ->
            Protocol.send a
              ~payload:"raw payload bytes \x00\xff"
              (Jsonx.Obj [ ("op", Jsonx.Str "x") ]);
            Protocol.send a (Jsonx.Obj [ ("op", Jsonx.Str "bare") ]);
            (match Protocol.recv b with
            | Some (header, Some payload) ->
              Alcotest.(check (option string))
                "op" (Some "x")
                (Jsonx.str (Jsonx.member "op" header));
              Alcotest.(check (option int))
                "payload_bytes announced" (Some (String.length payload))
                (Jsonx.int (Jsonx.member "payload_bytes" header));
              Alcotest.(check string) "payload" "raw payload bytes \x00\xff"
                payload
            | _ -> Alcotest.fail "first frame lost");
            (match Protocol.recv b with
            | Some (_, None) -> ()
            | _ -> Alcotest.fail "second frame lost");
            Unix.close a;
            match Protocol.recv b with
            | None -> ()
            | Some _ -> Alcotest.fail "EOF should be None"));
    Alcotest.test_case "oversized and torn frames raise Protocol_error"
      `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close a with Unix.Unix_error _ -> ());
            Unix.close b)
          (fun () ->
            (* an absurd length prefix *)
            let huge = Bytes.of_string "\x7f\xff\xff\xff" in
            ignore (Unix.write a huge 0 4);
            (match Protocol.recv b with
            | exception Protocol.Protocol_error _ -> ()
            | _ -> Alcotest.fail "oversized frame accepted");
            (* a length prefix with no body *)
            ignore (Unix.write a (Bytes.of_string "\x00\x00\x00\x10ab") 0 6);
            Unix.close a;
            match Protocol.recv b with
            | exception Protocol.Protocol_error _ -> ()
            | _ -> Alcotest.fail "torn frame accepted"));
  ]

(* ---------------------------------------------------------------- *)
(* Pool *)

let pool_tests =
  [
    Alcotest.test_case "jobs run, failures are swallowed and counted" `Quick
      (fun () ->
        let p = Pool.create ~workers:2 ~queue:16 () in
        let hits = Atomic.make 0 in
        for _ = 1 to 8 do
          match Pool.submit p (fun () -> Atomic.incr hits) with
          | `Accepted -> ()
          | _ -> Alcotest.fail "queue of 16 refused 8 jobs"
        done;
        ignore (Pool.submit p (fun () -> failwith "boom"));
        Pool.drain p;
        Alcotest.(check int) "all jobs ran" 8 (Atomic.get hits);
        Alcotest.(check int) "failure counted" 1 (Pool.failed p);
        Alcotest.(check int) "executed counts failures too" 9
          (Pool.executed p));
    Alcotest.test_case "a full queue is explicit backpressure, not a drop"
      `Quick (fun () ->
        let p = Pool.create ~workers:1 ~queue:2 () in
        let gate = Atomic.make false in
        let ran = Atomic.make 0 in
        let blocker () =
          while not (Atomic.get gate) do
            Thread.yield ()
          done
        in
        (* one job occupies the worker, two fill the queue *)
        ignore (Pool.submit p blocker);
        (* wait until the blocker is actually running so the queue
           capacity is exactly 2 *)
        while Pool.running p = 0 do
          Thread.yield ()
        done;
        ignore (Pool.submit p (fun () -> Atomic.incr ran));
        ignore (Pool.submit p (fun () -> Atomic.incr ran));
        (match Pool.submit p (fun () -> Atomic.incr ran) with
        | `Overloaded -> ()
        | `Accepted -> Alcotest.fail "queue bound not enforced"
        | `Draining -> Alcotest.fail "pool is not draining");
        Alcotest.(check int) "rejection counted" 1 (Pool.rejected p);
        Atomic.set gate true;
        Pool.drain p;
        Alcotest.(check int) "queued jobs still ran" 2 (Atomic.get ran);
        match Pool.submit p (fun () -> ()) with
        | `Draining -> ()
        | _ -> Alcotest.fail "drained pool accepted work");
  ]

(* ---------------------------------------------------------------- *)
(* Daemon, end to end *)

let with_daemon ?(workers = 2) ?(queue = 8) ?(timeout_s = 120.0) ?shims f =
  let dir = Filename.temp_file "moard_test_daemon" "" in
  Sys.remove dir;
  let socket = Filename.temp_file "moardd_test" ".sock" in
  Sys.remove socket;
  let cfg =
    {
      Daemon.default_config with
      Daemon.socket;
      store_dir = dir;
      workers;
      queue;
      timeout_s;
      shims =
        Option.value ~default:Daemon.default_config.Daemon.shims shims;
    }
  in
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f d cfg)

let rpc cfg req = Client.rpc ~socket:cfg.Daemon.socket req

let advf_req obj =
  Jsonx.Obj
    [
      ("op", Jsonx.Str "advf");
      ("benchmark", Jsonx.Str "LULESH");
      ("object", Jsonx.Str obj);
    ]

let served header = Jsonx.str (Jsonx.member "served" header)

let direct_payload obj =
  let e = Registry.find "LULESH" in
  Query.advf_payload (Context.make (e.Registry.workload ())) ~object_name:obj

let daemon_tests =
  [
    Alcotest.test_case "version and proto mismatch handling" `Quick (fun () ->
        with_daemon (fun _ cfg ->
            let header, _ =
              rpc cfg (Jsonx.Obj [ ("op", Jsonx.Str "version") ])
            in
            Alcotest.(check (option string))
              "server version"
              (Some Moard_server.Version.version)
              (Jsonx.str (Jsonx.member "server" header));
            let header, _ =
              rpc cfg
                (Jsonx.Obj [ ("proto", Jsonx.Int 99); ("op", Jsonx.Str "stat") ])
            in
            match Client.error_of header with
            | Some ("proto-mismatch", _) -> ()
            | _ -> Alcotest.fail "future proto accepted"));
    Alcotest.test_case "malformed requests get bad-request, not a hangup"
      `Quick (fun () ->
        with_daemon (fun _ cfg ->
            let header, _ = rpc cfg (Jsonx.Obj [ ("no_op", Jsonx.Int 1) ]) in
            (match Client.error_of header with
            | Some ("bad-request", _) -> ()
            | _ -> Alcotest.fail "missing op not rejected");
            let header, _ =
              rpc cfg
                (Jsonx.Obj
                   [ ("op", Jsonx.Str "advf"); ("benchmark", Jsonx.Str "NOPE") ])
            in
            match Client.error_of header with
            | Some _ -> ()
            | None -> Alcotest.fail "unknown benchmark not rejected"));
    Alcotest.test_case "advf: computed once, cache hit after, bytes equal \
                        offline" `Quick (fun () ->
        with_daemon (fun _ cfg ->
            let h1, p1 = rpc cfg (advf_req "m_elemBC") in
            Alcotest.(check (option string))
              "cold" (Some "computed") (served h1);
            let h2, p2 = rpc cfg (advf_req "m_elemBC") in
            (match served h2 with
            | Some ("memory-hit" | "disk-hit") -> ()
            | s ->
              Alcotest.failf "warm query not a hit: %s"
                (Option.value ~default:"?" s));
            Alcotest.(check (option string))
              "identical bytes" (Option.map Fun.id p1) (Option.map Fun.id p2);
            let direct = direct_payload "m_elemBC" in
            Alcotest.(check string)
              "daemon equals offline" direct
              (Option.get p1)));
    Alcotest.test_case "concurrent clients: every payload byte-identical to \
                        offline" `Quick (fun () ->
        with_daemon ~workers:2 ~queue:32 (fun _ cfg ->
            let objs = [| "m_elemBC"; "m_delv_zeta" |] in
            let expect = Array.map direct_payload objs in
            let results = Array.make 12 None in
            let threads =
              Array.init 12 (fun i ->
                  Thread.create
                    (fun i ->
                      let _, p = rpc cfg (advf_req objs.(i mod 2)) in
                      results.(i) <- p)
                    i)
            in
            Array.iter Thread.join threads;
            Array.iteri
              (fun i p ->
                match p with
                | Some p ->
                  Alcotest.(check string)
                    (Printf.sprintf "request %d" i)
                    expect.(i mod 2) p
                | None -> Alcotest.failf "request %d lost its payload" i)
              results));
    Alcotest.test_case "stat reflects store hits and pool work" `Quick
      (fun () ->
        with_daemon (fun _ cfg ->
            ignore (rpc cfg (advf_req "m_elemBC"));
            ignore (rpc cfg (advf_req "m_elemBC"));
            let header, _ = rpc cfg (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            let store = Jsonx.member "store" header in
            let field name =
              match store with
              | Some s -> Jsonx.int (Jsonx.member name s)
              | None -> None
            in
            Alcotest.(check (option int)) "one entry" (Some 1) (field "entries");
            Alcotest.(check bool) "a hit happened" true
              (match field "mem_hits" with Some n -> n >= 1 | None -> false);
            (* one context per program, however many queries hit it (the
               golden_executions counter is process-global, so other
               suites in this binary contribute to it) *)
            Alcotest.(check (option int))
              "one shared context" (Some 1)
              (Jsonx.int (Jsonx.member "contexts" header))));
    Alcotest.test_case "campaign: daemon result equals the engine's stable \
                        report, then serves from store" `Quick (fun () ->
        with_daemon (fun _ cfg ->
            let req =
              Jsonx.Obj
                [
                  ("op", Jsonx.Str "campaign");
                  ("benchmark", Jsonx.Str "LULESH");
                  ("objects", Jsonx.Arr [ Jsonx.Str "m_elemBC" ]);
                  ("seed", Jsonx.Int 7);
                  ("ci_width", Jsonx.Float 0.05);
                  ("batch", Jsonx.Int 37);
                ]
            in
            let h1, p1 = rpc cfg req in
            Alcotest.(check (option string))
              "cold" (Some "computed") (served h1);
            Alcotest.(check (option bool))
              "complete" (Some true)
              (Jsonx.bool (Jsonx.member "complete" h1));
            let e = Registry.find "LULESH" in
            let ctx = Context.make (e.Registry.workload ()) in
            let plan =
              Moard_campaign.Plan.make ~seed:7 ~ci_width:0.05 ~batch:37 ctx
                ~objects:[ "m_elemBC" ]
            in
            let direct =
              Query.campaign_payload (Moard_campaign.Engine.run ctx plan)
            in
            Alcotest.(check string) "daemon equals engine" direct
              (Option.get p1);
            let h2, p2 = rpc cfg req in
            (match served h2 with
            | Some ("memory-hit" | "disk-hit") -> ()
            | _ -> Alcotest.fail "campaign not served from store");
            Alcotest.(check string) "served bytes" (Option.get p1)
              (Option.get p2)));
    Alcotest.test_case "a corrupted store entry is healed and re-served \
                        through the daemon" `Quick (fun () ->
        with_daemon (fun d cfg ->
            let _, p1 = rpc cfg (advf_req "m_elemBC") in
            (* corrupt the entry on disk, then evict the memory layer's
               copy by going through the daemon's own store handle *)
            let store = Daemon.store d in
            let key =
              Moard_store.Key.advf
                ~program:
                  ((Registry.find "LULESH").Registry.workload ())
                    .Moard_inject.Workload.program
                ~object_name:"m_elemBC"
                ~options:Moard_core.Model.default_options
            in
            let hex = Moard_store.Key.to_hex key in
            let path =
              Filename.concat
                (Filename.concat
                   (Filename.concat (Store.dir store) "objects")
                   (String.sub hex 0 2))
                (hex ^ ".rec")
            in
            let ic = open_in_bin path in
            let image = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let b = Bytes.of_string image in
            let pos = String.length image - 1 in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
            let oc = open_out_bin path in
            output_bytes oc b;
            close_out oc;
            Store.delete store ~key;
            (* delete dropped both layers; restore the corrupt disk image *)
            let oc = open_out_bin path in
            output_bytes oc b;
            close_out oc;
            let h2, p2 = rpc cfg (advf_req "m_elemBC") in
            Alcotest.(check (option string))
              "healed by recompute" (Some "recomputed") (served h2);
            Alcotest.(check string)
              "identical bytes after healing" (Option.get p1) (Option.get p2);
            let h3, p3 = rpc cfg (advf_req "m_elemBC") in
            (match served h3 with
            | Some ("memory-hit" | "disk-hit") -> ()
            | _ -> Alcotest.fail "healed entry not served");
            Alcotest.(check string) "same bytes" (Option.get p1)
              (Option.get p3)));
    Alcotest.test_case "stop drains: socket removed, second stop is a no-op"
      `Quick (fun () ->
        let dir = Filename.temp_file "moard_test_daemon" "" in
        Sys.remove dir;
        let socket = Filename.temp_file "moardd_test" ".sock" in
        Sys.remove socket;
        let cfg =
          { Daemon.default_config with Daemon.socket; store_dir = dir }
        in
        let d = Daemon.start cfg in
        ignore (Client.rpc ~socket (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]));
        Daemon.stop d;
        Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
        Daemon.stop d;
        match Client.rpc ~socket (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) with
        | exception Unix.Unix_error _ -> ()
        | _ -> Alcotest.fail "stopped daemon still answering");
  ]

(* ---------------------------------------------------------------- *)
(* Resilience: the hardening contracts the chaos harness relies on *)

module Chaos = Moard_chaos.Chaos

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let resilience_tests =
  [
    Alcotest.test_case "a dying job still answers: typed internal error, \
                        cause surfaced in stat" `Quick (fun () ->
        let shims =
          {
            Chaos.passthrough with
            Chaos.wrap_job = (fun _job () -> failwith "wrapped job exploded");
          }
        in
        with_daemon ~timeout_s:60.0 ~shims (fun d cfg ->
            let t0 = Unix.gettimeofday () in
            let header, _ = rpc cfg (advf_req "m_elemBC") in
            let dt = Unix.gettimeofday () -. t0 in
            (match Client.error_of header with
            | Some ("internal", msg) ->
              Alcotest.(check bool) "error names the cause" true
                (contains ~sub:"wrapped job exploded" msg)
            | Some (code, msg) ->
              Alcotest.failf "expected internal, got %s: %s" code msg
            | None -> Alcotest.fail "dead job reported success");
            Alcotest.(check bool)
              "answered promptly, not by waiting out the timeout" true
              (dt < 30.0);
            Alcotest.(check bool) "pool counted the failure" true
              (Pool.failed (Daemon.pool d) >= 1);
            let stat, _ = rpc cfg (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            match Jsonx.member "pool" stat with
            | Some pool -> (
              match Jsonx.str (Jsonx.member "last_error" pool) with
              | Some e ->
                Alcotest.(check bool) "last_error surfaced" true
                  (contains ~sub:"wrapped job exploded" e)
              | None -> Alcotest.fail "no last_error in stat")
            | None -> Alcotest.fail "no pool section in stat"));
    Alcotest.test_case "a timed-out campaign frees its worker before the \
                        job completes: nothing stored, journal kept" `Slow
      (fun () ->
        (* the job shim sleeps past the deadline before the job even
           starts, so the timeout answer always wins; the job then finds
           its cancel token expired and abandons at the first batch
           check *)
        let shims =
          {
            Chaos.passthrough with
            Chaos.wrap_job =
              (fun job () ->
                Unix.sleepf 0.5;
                job ());
          }
        in
        with_daemon ~workers:1 ~timeout_s:0.1 ~shims (fun d cfg ->
            let req =
              Jsonx.Obj
                [
                  ("op", Jsonx.Str "campaign");
                  ("benchmark", Jsonx.Str "LULESH");
                  ("objects", Jsonx.Arr [ Jsonx.Str "m_elemBC" ]);
                  ("seed", Jsonx.Int 11);
                  ("ci_width", Jsonx.Float 0.05);
                ]
            in
            let header, _ = rpc cfg req in
            (match Client.error_of header with
            | Some ("timeout", msg) ->
              Alcotest.(check bool) "says the work was cancelled" true
                (contains ~sub:"cancelled" msg)
            | Some (code, _) -> Alcotest.failf "expected timeout, got %s" code
            | None -> Alcotest.fail "request should have timed out");
            (* cooperative cancellation: the single worker frees long
               before an uncancelled campaign would finish *)
            let deadline = Unix.gettimeofday () +. 30.0 in
            while
              (Pool.running (Daemon.pool d) > 0
              || Pool.queued (Daemon.pool d) > 0)
              && Unix.gettimeofday () < deadline
            do
              Thread.delay 0.01
            done;
            Alcotest.(check int) "worker freed" 0
              (Pool.running (Daemon.pool d));
            (* the job was abandoned, not completed: no result reached
               the store, and the journal survives for a resume *)
            let e = Registry.find "LULESH" in
            let w = e.Registry.workload () in
            let ctx = Context.make w in
            let plan =
              Moard_campaign.Plan.make ~seed:11 ~ci_width:0.05 ctx
                ~objects:[ "m_elemBC" ]
            in
            let key =
              Moard_store.Key.campaign
                ~program:w.Moard_inject.Workload.program ~plan
            in
            Alcotest.(check bool) "nothing stored" true
              (Store.get (Daemon.store d) ~key
                 ~kind:Moard_store.Record.Campaign
              = None);
            let journal =
              Filename.concat
                (Store.journal_dir (Daemon.store d))
                (Moard_store.Key.to_hex key ^ ".journal")
            in
            Alcotest.(check bool) "journal kept for resume" true
              (Sys.file_exists journal)));
    Alcotest.test_case "raw garbage on the socket: typed bad-request, the \
                        daemon keeps serving" `Quick (fun () ->
        with_daemon (fun _ cfg ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.connect fd (Unix.ADDR_UNIX cfg.Daemon.socket);
                (* a well-framed frame whose body is not JSON *)
                let body = "this is not json {" in
                let b = Bytes.create (4 + String.length body) in
                Bytes.set_int32_be b 0 (Int32.of_int (String.length body));
                Bytes.blit_string body 0 b 4 (String.length body);
                ignore (Unix.write fd b 0 (Bytes.length b));
                (match Protocol.recv fd with
                | Some (h, _) -> (
                  match Client.error_of h with
                  | Some ("bad-request", _) -> ()
                  | _ -> Alcotest.fail "garbage not answered with bad-request")
                | None -> Alcotest.fail "connection dropped without an answer"
                | exception Protocol.Protocol_error _ ->
                  Alcotest.fail "daemon sent garbage back"));
            (* the accept loop is alive and well *)
            let header, _ = rpc cfg (Jsonx.Obj [ ("op", Jsonx.Str "version") ]) in
            match Client.error_of header with
            | None -> ()
            | Some (code, _) ->
              Alcotest.failf "daemon wedged after garbage: %s" code));
  ]

(* ---------------------------------------------------------------- *)
(* Single-flight coalescing and seeded retry backoff *)

let coalescing_tests =
  [
    Alcotest.test_case "six clients on one cold key: one compute, five \
                        coalesced, six payloads equal offline" `Quick
      (fun () ->
        (* the slow job holds the flight open long enough for every
           follower to join before the leader resolves *)
        let shims =
          {
            Chaos.passthrough with
            Chaos.wrap_job =
              (fun job () ->
                Unix.sleepf 0.3;
                job ());
          }
        in
        with_daemon ~workers:2 ~queue:32 ~shims (fun d cfg ->
            let k = 6 in
            let results = Array.make k None in
            let threads =
              Array.init k (fun i ->
                  Thread.create
                    (fun i -> results.(i) <- Some (rpc cfg (advf_req "m_elemBC")))
                    i)
            in
            Array.iter Thread.join threads;
            let direct = direct_payload "m_elemBC" in
            let computed = ref 0 and coalesced = ref 0 in
            Array.iteri
              (fun i -> function
                | None -> Alcotest.failf "client %d lost its response" i
                | Some (h, p) ->
                  (match served h with
                  | Some "computed" -> incr computed
                  | Some "coalesced" ->
                    incr coalesced;
                    Alcotest.(check (option bool))
                      (Printf.sprintf "client %d marked cached" i)
                      (Some true)
                      (Jsonx.bool (Jsonx.member "cached" h))
                  | s ->
                    Alcotest.failf "client %d: unexpected served %s" i
                      (Option.value ~default:"?" s));
                  Alcotest.(check (option string))
                    (Printf.sprintf "client %d bytes" i)
                    (Some direct) p)
              results;
            Alcotest.(check int) "exactly one compute" 1 !computed;
            Alcotest.(check int) "the rest coalesced" (k - 1) !coalesced;
            Alcotest.(check int) "one pool job for six clients" 1
              (Pool.executed (Daemon.pool d));
            let stat, _ = rpc cfg (Jsonx.Obj [ ("op", Jsonx.Str "stat") ]) in
            Alcotest.(check (option int))
              "stat counted the followers" (Some (k - 1))
              (Jsonx.int (Jsonx.member "coalesced" stat))));
    Alcotest.test_case "retry backoff: seeded, reproducible, capped" `Quick
      (fun () ->
        let module Rng = Moard_chaos.Rng in
        let seq seed =
          let rng = Rng.make seed in
          List.init 6 (Client.backoff ~base_delay_s:0.05 ~max_delay_s:1.0 rng)
        in
        Alcotest.(check (list (float 0.0)))
          "same stream, same schedule" (seq 42) (seq 42);
        Alcotest.(check bool) "different stream, different schedule" true
          (seq 42 <> seq 43);
        List.iteri
          (fun i d ->
            let cap = Float.min 1.0 (0.05 *. (2. ** float_of_int i)) in
            Alcotest.(check bool)
              (Printf.sprintf "attempt %d within [cap/2, cap]" i)
              true
              (d >= (cap /. 2.) -. 1e-9 && d <= cap +. 1e-9))
          (seq 42));
  ]

let suite =
  [
    ("server.jsonx", jsonx_tests);
    ("server.protocol", protocol_tests);
    ("server.pool", pool_tests);
    ("server.daemon", daemon_tests);
    ("server.coalescing", coalescing_tests);
    ("server.resilience", resilience_tests);
  ]
