(* Regenerates the golden aDVF snapshot used by test_golden.ml.

     dune exec test/golden_gen.exe > test/golden_advf.expected

   One line per Table-I data object, every float printed as a hex literal
   (%h) so the comparison is bit-exact. The fault-injection budget is small
   and fixed: the snapshot guards the *determinism* of the pipeline across
   refactors, not the paper's absolute numbers. *)

module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model
module Advf = Moard_core.Advf

let options = { Model.default_options with Model.fi_budget = 1000 }

let () =
  List.iter
    (fun (e : Registry.entry) ->
      let ctx = Context.make (e.Registry.workload ()) in
      List.iter
        (fun obj ->
          let r = Model.analyze ~options ctx ~object_name:obj in
          Printf.printf "%s %s %d %h %h" e.Registry.benchmark obj
            r.Advf.involvements r.Advf.masking_events r.Advf.advf;
          Array.iter (fun x -> Printf.printf " %h" x) r.Advf.by_level;
          Array.iter (fun x -> Printf.printf " %h" x) r.Advf.by_kind;
          Printf.printf "\n")
        e.Registry.objects)
    Registry.table1
