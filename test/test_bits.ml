(* Bit-image values and error patterns. *)

open Moard_bits
module B = Bitval

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bitval_unit =
  [
    Alcotest.test_case "widths" `Quick (fun () ->
        check tint "w1" 1 (B.bits_in B.W1);
        check tint "w32" 32 (B.bits_in B.W32);
        check tint "w64" 64 (B.bits_in B.W64);
        check tint "b1" 1 (B.bytes_in B.W1);
        check tint "b32" 4 (B.bytes_in B.W32);
        check tint "b64" 8 (B.bytes_in B.W64));
    Alcotest.test_case "make truncates to width" `Quick (fun () ->
        let v = B.make B.W32 0xFFFF_FFFF_FFFFL in
        check (Alcotest.int64 : int64 Alcotest.testable) "low 32 bits kept"
          0xFFFF_FFFFL (v : B.t).bits);
    Alcotest.test_case "bool round trip" `Quick (fun () ->
        check tbool "true" true (B.to_bool (B.of_bool true));
        check tbool "false" false (B.to_bool (B.of_bool false)));
    Alcotest.test_case "i32 sign extension" `Quick (fun () ->
        check (Alcotest.int64) "negative" (-1L)
          (B.to_int64 (B.of_int32 (-1l)));
        check (Alcotest.int64) "positive" 5L (B.to_int64 (B.of_int32 5l)));
    Alcotest.test_case "float image round trip" `Quick (fun () ->
        let v = B.of_float (-0.1) in
        check (Alcotest.float 0.0) "exact" (-0.1) (B.to_float v));
    Alcotest.test_case "to_float rejects narrow widths" `Quick (fun () ->
        Alcotest.check_raises "w32" (Invalid_argument "Bitval.to_float: width < 64")
          (fun () -> ignore (B.to_float (B.of_int32 1l))));
    Alcotest.test_case "flip_bit out of range" `Quick (fun () ->
        Alcotest.check_raises "bit 32 of w32" (Invalid_argument "Bitval.flip_bit")
          (fun () -> ignore (B.flip_bit (B.of_int32 0l) 32)));
    Alcotest.test_case "flip changes exactly one bit" `Quick (fun () ->
        let v = B.of_int64 0x0FF0L in
        let v' = B.flip_bit v 4 in
        check tint "popcount delta" 1
          (abs (B.popcount v' - B.popcount v));
        check tbool "bit toggled" (not (B.get_bit v 4)) (B.get_bit v' 4));
    Alcotest.test_case "zero / is_zero" `Quick (fun () ->
        check tbool "zero" true (B.is_zero (B.zero B.W64));
        check tbool "nonzero" false (B.is_zero (B.of_int64 1L)));
    Alcotest.test_case "of_float nan image" `Quick (fun () ->
        let v = B.of_float Float.nan in
        check tbool "nan back" true (Float.is_nan (B.to_float v)));
  ]

let gen_w64 = QCheck2.Gen.(map B.of_int64 int64)
let gen_bit = QCheck2.Gen.(int_bound 63)

let bitval_prop =
  [
    qtest "flip_bit is an involution"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) -> B.equal v (B.flip_bit (B.flip_bit v b) b));
    qtest "flip_bit never equals original"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) -> not (B.equal v (B.flip_bit v b)));
    qtest "popcount within width"
      gen_w64
      (fun v -> B.popcount v >= 0 && B.popcount v <= 64);
    qtest "to_int64 of of_int64 is identity" QCheck2.Gen.int64 (fun x ->
        Int64.equal x (B.to_int64 (B.of_int64 x)));
    qtest "float image preserved" QCheck2.Gen.float (fun x ->
        let y = B.to_float (B.of_float x) in
        (Float.is_nan x && Float.is_nan y) || Float.equal x y);
    qtest "hash respects equal" QCheck2.Gen.int64 (fun x ->
        B.hash (B.of_int64 x) = B.hash (B.of_int64 x));
  ]

let pattern_unit =
  [
    Alcotest.test_case "singles counts per width" `Quick (fun () ->
        check tint "w64" 64 (List.length (Pattern.singles B.W64));
        check tint "w32" 32 (List.length (Pattern.singles B.W32));
        check tint "w1" 1 (List.length (Pattern.singles B.W1)));
    Alcotest.test_case "bursts stay in width" `Quick (fun () ->
        let bs = Pattern.bursts ~len:3 B.W32 in
        check tint "count" 30 (List.length bs);
        List.iter (fun p -> assert (Pattern.fits p B.W32)) bs);
    Alcotest.test_case "pairs with separation" `Quick (fun () ->
        let ps = Pattern.pairs ~sep:4 B.W32 in
        check tint "count" 28 (List.length ps);
        List.iter (fun p -> assert (Pattern.fits p B.W32)) ps);
    Alcotest.test_case "burst flips contiguous bits" `Quick (fun () ->
        let v = Pattern.apply (Pattern.Burst (8, 4)) (B.zero B.W64) in
        check (Alcotest.int64) "0xF00" 0xF00L (v : B.t).bits);
    Alcotest.test_case "pair flips two bits" `Quick (fun () ->
        let v = Pattern.apply (Pattern.Pair (0, 8)) (B.zero B.W64) in
        check (Alcotest.int64) "0x101" 0x101L (v : B.t).bits);
    Alcotest.test_case "enumerate adds multi families" `Quick (fun () ->
        let ps =
          Pattern.enumerate ~multi:[ `Burst 2; `Pair 4 ] B.W32
        in
        check tint "32 + 31 + 28" 91 (List.length ps));
    Alcotest.test_case "apply out of width raises" `Quick (fun () ->
        Alcotest.check_raises "bit 40 of w32"
          (Invalid_argument "Bitval.flip_bit") (fun () ->
            ignore (Pattern.apply (Pattern.Single 40) (B.of_int32 0l))));
    Alcotest.test_case "bits_of ascending" `Quick (fun () ->
        check (Alcotest.list tint) "burst" [ 3; 4; 5 ]
          (Pattern.bits_of (Pattern.Burst (3, 3)));
        check (Alcotest.list tint) "pair" [ 2; 9 ]
          (Pattern.bits_of (Pattern.Pair (2, 7))));
  ]

let pattern_prop =
  [
    qtest "single apply is involutive"
      QCheck2.Gen.(pair gen_w64 gen_bit)
      (fun (v, b) ->
        let p = Pattern.Single b in
        B.equal v (Pattern.apply p (Pattern.apply p v)));
    qtest "burst apply is involutive"
      QCheck2.Gen.(triple gen_w64 (int_bound 60) (int_range 1 4))
      (fun (v, start, len) ->
        QCheck2.assume (start + len <= 64);
        let p = Pattern.Burst (start, len) in
        B.equal v (Pattern.apply p (Pattern.apply p v)));
    qtest "burst changes popcount by at most len"
      QCheck2.Gen.(triple gen_w64 (int_bound 60) (int_range 1 4))
      (fun (v, start, len) ->
        QCheck2.assume (start + len <= 64);
        let v' = Pattern.apply (Pattern.Burst (start, len)) v in
        abs (B.popcount v' - B.popcount v) <= len);
  ]

(* ---- Patternset: the bit-parallel kernel's set algebra and closed
   forms, checked against bit-by-bit reference semantics. ---- *)

module Ps = Patternset

let wmask w =
  if B.bits_in w = 64 then -1L
  else Int64.sub (Int64.shift_left 1L (B.bits_in w)) 1L

let trunc w x = Int64.logand x (wmask w)

let sext w x =
  let n = B.bits_in w in
  if n = 64 then x
  else Int64.shift_right (Int64.shift_left x (64 - n)) (64 - n)

let flip w x i = trunc w (Int64.logxor x (Int64.shift_left 1L i))

(* The reference question every closed form answers: does flipping bit [i]
   of [x] leave [op x] unchanged? *)
let ref_masked w op x =
  let r0 = op x in
  List.fold_left
    (fun acc i -> if op (flip w x i) = r0 then Ps.add acc i else acc)
    Ps.empty
    (List.init (B.bits_in w) Fun.id)

let gen_width = QCheck2.Gen.oneofl [ B.W32; B.W64 ]

let gen_word w =
  QCheck2.Gen.(map (fun x -> trunc w x) (oneof [ int64; oneofl [ 0L; 1L; -1L; Int64.min_int ] ]))

let gen_w_pair =
  QCheck2.Gen.(
    gen_width >>= fun w ->
    pair (gen_word w) (gen_word w) >|= fun (a, b) -> (w, a, b))

let patternset_unit =
  [
    Alcotest.test_case "full has width bits, empty none" `Quick (fun () ->
        check tint "w64" 64 (Ps.count (Ps.full ~width:B.W64));
        check tint "w32" 32 (Ps.count (Ps.full ~width:B.W32));
        check tint "w1" 1 (Ps.count (Ps.full ~width:B.W1));
        check tint "empty" 0 (Ps.count Ps.empty));
    Alcotest.test_case "set algebra" `Quick (fun () ->
        let a = Ps.add (Ps.add Ps.empty 3) 7 in
        let b = Ps.add (Ps.add Ps.empty 7) 63 in
        check tint "union" 3 (Ps.count (Ps.union a b));
        check tint "inter" 1 (Ps.count (Ps.inter a b));
        check tint "diff" 1 (Ps.count (Ps.diff a b));
        check tbool "subset yes" true (Ps.subset (Ps.singleton 7) a);
        check tbool "subset no" false (Ps.subset b a);
        check tbool "mem" true (Ps.mem b 63);
        check tbool "removed" false (Ps.mem (Ps.remove b 63) 63));
    Alcotest.test_case "iter and fold ascend" `Quick (fun () ->
        let s = Ps.add (Ps.add (Ps.add Ps.empty 42) 0) 17 in
        let seen = ref [] in
        Ps.iter (fun i -> seen := i :: !seen) s;
        check (Alcotest.list tint) "iter" [ 0; 17; 42 ] (List.rev !seen);
        check (Alcotest.list tint) "to_bits" [ 0; 17; 42 ] (Ps.to_bits s);
        check
          (Alcotest.list tint)
          "fold" [ 42; 17; 0 ]
          (Ps.fold (fun i acc -> i :: acc) s []));
    Alcotest.test_case "closed-form edge cases" `Quick (fun () ->
        (* mul by zero: constant result, everything masked *)
        check tbool "mul by 0" true
          (Ps.equal (Ps.full ~width:B.W64) (Ps.mul_masked ~other:0L ~width:B.W64));
        (* out-of-range logical shift: constant zero *)
        check tbool "oob lshr" true
          (Ps.equal (Ps.full ~width:B.W64)
             (Ps.lshr_value_masked ~amount:(-1) ~width:B.W64));
        (* out-of-range arithmetic shift: only the sign bit survives *)
        check tint "oob ashr" 63
          (Ps.count (Ps.ashr_value_masked ~amount:64 ~width:B.W64));
        (* equal words: any flip breaks equality *)
        check tbool "eq of equal" true
          (Ps.is_empty (Ps.eq_masked ~a:5L ~b:5L ~width:B.W64)));
  ]

let patternset_prop =
  [
    qtest "band closed form = reference" gen_w_pair (fun (w, a, other) ->
        Ps.equal
          (Ps.band_masked ~other ~width:w)
          (ref_masked w (fun x -> Int64.logand x other) a));
    qtest "bor closed form = reference" gen_w_pair (fun (w, a, other) ->
        Ps.equal
          (Ps.bor_masked ~other ~width:w)
          (ref_masked w (fun x -> Int64.logor x other) a));
    qtest "bxor never masks" gen_w_pair (fun (w, a, other) ->
        Ps.equal (Ps.bxor_masked ~width:w)
          (ref_masked w (fun x -> trunc w (Int64.logxor x other)) a));
    qtest "add/sub never mask" gen_w_pair (fun (w, a, other) ->
        Ps.equal (Ps.addsub_masked ~width:w)
          (ref_masked w (fun x -> trunc w (Int64.add x other)) a)
        && Ps.equal (Ps.addsub_masked ~width:w)
             (ref_masked w (fun x -> trunc w (Int64.sub x other)) a));
    qtest "mul closed form = reference" gen_w_pair (fun (w, a, other) ->
        Ps.equal (Ps.mul_masked ~other ~width:w)
          (ref_masked w (fun x -> trunc w (Int64.mul x other)) a));
    qtest "shl closed form = reference"
      QCheck2.Gen.(
        gen_width >>= fun w ->
        pair (gen_word w) (int_bound (B.bits_in w - 1)) >|= fun (a, s) ->
        (w, a, s))
      (fun (w, a, s) ->
        Ps.equal
          (Ps.shl_value_masked ~amount:s ~width:w)
          (ref_masked w (fun x -> trunc w (Int64.shift_left x s)) a));
    qtest "lshr closed form = reference"
      QCheck2.Gen.(
        gen_width >>= fun w ->
        pair (gen_word w) (int_bound (B.bits_in w - 1)) >|= fun (a, s) ->
        (w, a, s))
      (fun (w, a, s) ->
        Ps.equal
          (Ps.lshr_value_masked ~amount:s ~width:w)
          (ref_masked w (fun x -> Int64.shift_right_logical (trunc w x) s) a));
    qtest "ashr closed form = reference"
      QCheck2.Gen.(
        gen_width >>= fun w ->
        pair (gen_word w) (int_bound (B.bits_in w - 1)) >|= fun (a, s) ->
        (w, a, s))
      (fun (w, a, s) ->
        Ps.equal
          (Ps.ashr_value_masked ~amount:s ~width:w)
          (ref_masked w (fun x -> trunc w (Int64.shift_right (sext w x) s)) a));
    qtest "eq closed form = reference" gen_w_pair (fun (w, a, b) ->
        Ps.equal
          (Ps.eq_masked ~a ~b ~width:w)
          (ref_masked w (fun x -> if x = b then 1L else 0L) a));
    qtest "trunc closed form = reference"
      QCheck2.Gen.(map (trunc B.W64) int64)
      (fun a ->
        Ps.equal (Ps.trunc_masked ~width:B.W64)
          (ref_masked B.W64 (fun x -> trunc B.W32 x) a));
    qtest "overshadow candidates = reference" gen_w_pair (fun (w, a, other) ->
        let reference =
          List.fold_left
            (fun acc i ->
              if Int64.abs (sext w (flip w a i)) < Int64.abs (sext w other)
              then Ps.add acc i
              else acc)
            Ps.empty
            (List.init (B.bits_in w) Fun.id)
        in
        Ps.equal (Ps.addsub_overshadow ~a ~other ~width:w) reference);
  ]

let suite =
  [
    ("bits.bitval", bitval_unit);
    ("bits.bitval.properties", bitval_prop);
    ("bits.pattern", pattern_unit);
    ("bits.pattern.properties", pattern_prop);
    ("bits.patternset", patternset_unit);
    ("bits.patternset.properties", patternset_prop);
  ]
