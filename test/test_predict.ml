(* The cross-input-size predictor (PR: predict).

   Layered like the code: the growth fits (level 2), the pooled rate
   fits (level 1), their degenerate and order-invariance properties,
   the size-parameterized registry, then the differential contract:
   train at small sizes, predict a size never injected, and compare
   against the campaign engine's ground truth at that size. *)

module Growth = Moard_predict.Growth
module Fit = Moard_predict.Fit
module Predict = Moard_predict.Predict
module Predict_report = Moard_report.Predict_report
module Engine = Moard_campaign.Engine
module Plan = Moard_campaign.Plan
module Context = Moard_inject.Context
module Registry = Moard_kernels.Registry
module Confidence = Moard_stats.Confidence
module Key = Moard_store.Key
module Store = Moard_store.Store
module Query = Moard_store.Query

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let feq = Alcotest.check (Alcotest.float 1e-9)

let workloads_of e sizes =
  List.map (fun n -> (n, e.Registry.workload_at n)) sizes

(* ---------------------------------------------------------------- *)
(* Growth: the level-2 count-vs-size fits *)

let growth_tests =
  [
    Alcotest.test_case "pure power law is recovered exactly" `Quick (fun () ->
        (* counts n^3: log-log least squares through exact monomial
           points reproduces exponent and coefficient *)
        let points = [ (4, 64); (6, 216); (8, 512) ] in
        let g = Growth.fit points in
        feq "exponent" 3.0 (Growth.exponent g);
        feq "eval at 10" 1000.0 (Growth.eval g 10));
    Alcotest.test_case "no observations mean Zero forever" `Quick (fun () ->
        let g = Growth.fit [ (4, 0); (8, 0) ] in
        Alcotest.(check string) "kind" "zero" (Growth.kind_name g);
        feq "eval" 0.0 (Growth.eval g 1024));
    Alcotest.test_case "one observation falls back to proportional" `Quick
      (fun () ->
        let g = Growth.fit [ (4, 0); (8, 24) ] in
        Alcotest.(check string) "kind" "proportional" (Growth.kind_name g);
        feq "exponent" 1.0 (Growth.exponent g);
        feq "eval at 16" 48.0 (Growth.eval g 16));
    Alcotest.test_case "eval is clamped: finite, bounded, non-negative" `Quick
      (fun () ->
        (* a steep fit cannot overflow downstream weights *)
        let g = Growth.fit [ (2, 1); (4, 1_000_000_000) ] in
        let c = Growth.eval g 1_000_000 in
        Alcotest.(check bool) "finite" true (Float.is_finite c);
        Alcotest.(check bool) "bounded" true (c <= 1e15);
        Alcotest.(check bool) "non-negative" true (c >= 0.0);
        feq "nonpositive size" 0.0 (Growth.eval g 0));
    Alcotest.test_case "predict returns observed counts verbatim" `Quick
      (fun () ->
        let points = [ (4, 65); (6, 217) ] in
        feq "at 4" 65.0 (Growth.predict ~points 4);
        feq "at 6" 217.0 (Growth.predict ~points 6));
  ]

(* ---------------------------------------------------------------- *)
(* Synthetic campaign results for the level-1 fits *)

let stratum ~label ~population ~by_code : Engine.stratum_result =
  let samples = Array.fold_left ( + ) 0 by_code in
  {
    Engine.label;
    population;
    samples;
    successes = by_code.(0) + by_code.(1);
    by_code;
    lo = 0.0;
    hi = 1.0;
    exhausted = samples = population;
  }

let object_result ~name ~strata : Engine.object_result =
  let sum f = Array.fold_left (fun a s -> a + f s) 0 strata in
  let by_code = Array.make 4 0 in
  Array.iter
    (fun (s : Engine.stratum_result) ->
      Array.iteri (fun c k -> by_code.(c) <- by_code.(c) + k) s.Engine.by_code)
    strata;
  {
    Engine.object_name = name;
    population = sum (fun s -> s.Engine.population);
    sites = 0;
    samples = sum (fun s -> s.Engine.samples);
    runs = sum (fun s -> s.Engine.samples);
    cache_hits = 0;
    by_code;
    estimate = 0.0;
    lo = 0.0;
    hi = 1.0;
    halfwidth = 0.5;
    stopped = Engine.Exhausted;
    strata;
  }

(* (size, object_result) generator: 2-4 distinct sizes, 3 strata whose
   populations and outcome splits vary freely — including empty strata,
   all-masked and all-SDC ones. *)
let gen_observations =
  QCheck2.Gen.(
    let gen_stratum label =
      int_range 0 40 >>= fun population ->
      let bounded = int_range 0 (min population 10) in
      bounded >>= fun a ->
      bounded >>= fun b ->
      bounded >>= fun c ->
      bounded >>= fun d ->
      let total = a + b + c + d in
      let scale x = if total = 0 then 0 else x * min total population / total in
      return
        (stratum ~label ~population
           ~by_code:[| scale a; scale b; scale c; scale d |])
    in
    int_range 2 4 >>= fun nsizes ->
    let sizes = List.init nsizes (fun i -> 4 + (3 * i)) in
    flatten_l
      (List.map
         (fun size ->
           gen_stratum "s0" >>= fun s0 ->
           gen_stratum "s1" >>= fun s1 ->
           gen_stratum "s2" >>= fun s2 ->
           return
             (size, object_result ~name:"x" ~strata:[| s0; s1; s2 |]))
         sizes))

let shuffle_of seed l =
  let a = Array.of_list l in
  let st = Random.State.make [| seed |] in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let fit_qcheck =
  [
    qtest "fits are invariant to observation order"
      QCheck2.Gen.(pair gen_observations (int_bound 1000))
      (fun (obs, seed) ->
        Fit.of_results obs = Fit.of_results (shuffle_of seed obs));
    qtest "degenerate strata still give finite bounded predictions"
      gen_observations
      (fun obs ->
        let fit = Fit.of_results obs in
        let counts = Fit.predicted_counts fit 1024 in
        Array.for_all
          (fun c -> Float.is_finite c && c >= 0.0 && c <= 1e15)
          counts
        && Array.for_all
             (fun s ->
               List.for_all
                 (fun cls ->
                   let p, i = Fit.rate ~z:1.96 s cls in
                   Float.is_finite p && 0.0 <= p && p <= 1.0
                   && 0.0 <= i.Confidence.lo
                   && i.Confidence.lo <= i.Confidence.hi
                   && i.Confidence.hi <= 1.0)
                 [ Fit.Masked; Fit.Sdc; Fit.Crashed ])
             fit.Fit.strata);
    qtest "predicting at a training size reproduces the observed counts"
      gen_observations
      (fun obs ->
        let fit = Fit.of_results obs in
        List.for_all
          (fun (size, (o : Engine.object_result)) ->
            let counts = Fit.predicted_counts fit size in
            Array.for_all2
              (fun c (s : Engine.stratum_result) ->
                c = float_of_int s.Engine.population)
              counts o.Engine.strata)
          obs);
    qtest "pooled rates are sample-weighted means of the training rates"
      gen_observations
      (fun obs ->
        let fit = Fit.of_results obs in
        Array.for_all
          (fun (s : Fit.stratum) ->
            let p, _ = Fit.rate ~z:1.96 s Fit.Masked in
            if s.Fit.samples = 0 then p = 0.5
            else
              Float.abs
                (p
                -. float_of_int s.Fit.successes /. float_of_int s.Fit.samples)
              < 1e-12)
          fit.Fit.strata);
  ]

let fit_tests =
  [
    Alcotest.test_case "of_results validates its inputs" `Quick (fun () ->
        let o = object_result ~name:"x" ~strata:[||] in
        let y = { o with Engine.object_name = "y" } in
        Alcotest.check_raises "too few"
          (Invalid_argument "Fit.of_results: need >= 2 training sizes")
          (fun () -> ignore (Fit.of_results [ (4, o) ]));
        Alcotest.check_raises "duplicate size"
          (Invalid_argument "Fit.of_results: duplicate training size")
          (fun () -> ignore (Fit.of_results [ (4, o); (4, o) ]));
        Alcotest.check_raises "mixed objects"
          (Invalid_argument "Fit.of_results: mixed objects") (fun () ->
            ignore (Fit.of_results [ (4, o); (6, y) ])));
    Alcotest.test_case "canonical_sizes sorts, dedups, refuses" `Quick
      (fun () ->
        Alcotest.(check (list int))
          "canonical" [ 4; 5; 8 ]
          (Predict.canonical_sizes [ 8; 4; 5; 4 ]);
        (match Predict.canonical_sizes [ 6; 6 ] with
        | exception Predict.Refused (Predict.Too_few_sizes 1) -> ()
        | _ -> Alcotest.fail "duplicate-only sizes accepted");
        Alcotest.check_raises "nonpositive"
          (Invalid_argument "Predict.canonical_sizes: size") (fun () ->
            ignore (Predict.canonical_sizes [ 0; 4 ])));
    Alcotest.test_case "refusal messages are self-contained" `Quick (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool)
              "nonempty" true
              (String.length (Predict.refusal_message r) > 0))
          [
            Predict.Too_few_sizes 1;
            Predict.Empty_population;
            Predict.No_predicted_population 64;
            Predict.Unobserved_weight 0.75;
          ]);
  ]

(* ---------------------------------------------------------------- *)
(* Registry: the uniform size knob *)

let registry_tests =
  [
    Alcotest.test_case
      "every entry builds distinct programs at its 4 ladder sizes" `Quick
      (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            let sizes = Array.to_list e.Registry.sizes in
            Alcotest.(check int)
              (e.Registry.benchmark ^ " ladder length")
              4 (List.length sizes);
            Alcotest.(check (list int))
              (e.Registry.benchmark ^ " ascending distinct")
              sizes
              (List.sort_uniq compare sizes);
            let hashes =
              List.map
                (fun n ->
                  Key.program_hash
                    (e.Registry.workload_at n).Moard_inject.Workload.program)
                sizes
            in
            Alcotest.(check int)
              (e.Registry.benchmark ^ " distinct programs")
              4
              (List.length (List.sort_uniq compare hashes)))
          Registry.all);
    Alcotest.test_case "workload_at default_size is the default workload"
      `Quick (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            Alcotest.(check string)
              e.Registry.benchmark
              (Key.program_hash
                 (e.Registry.workload ()).Moard_inject.Workload.program)
              (Key.program_hash
                 (e.Registry.workload_at e.Registry.default_size)
                   .Moard_inject.Workload.program))
          Registry.all);
    Alcotest.test_case "training sizes and holdout partition the ladder"
      `Quick (fun () ->
        List.iter
          (fun (e : Registry.entry) ->
            Alcotest.(check (list int))
              e.Registry.benchmark
              (Array.to_list e.Registry.sizes)
              (Registry.training_sizes e @ [ Registry.holdout_size e ]))
          Registry.all);
  ]

(* ---------------------------------------------------------------- *)
(* The engine's per-stratum outcome counts (what level 1 fits from) *)

let by_code_tests =
  [
    Alcotest.test_case "stratum by_code sums to the object's outcome counts"
      `Quick (fun () ->
        let e = Registry.find "MM" in
        let ctx = Context.make (e.Registry.workload_at 4) in
        let plan = Plan.make ctx ~objects:[ "C" ] in
        let r = Engine.run ctx plan in
        let o = r.Engine.objects.(0) in
        let sums = Array.make 4 0 in
        Array.iter
          (fun (s : Engine.stratum_result) ->
            Alcotest.(check int)
              "stratum by_code sums to its samples" s.Engine.samples
              (Array.fold_left ( + ) 0 s.Engine.by_code);
            Alcotest.(check int)
              "stratum successes are its masked codes" s.Engine.successes
              (s.Engine.by_code.(0) + s.Engine.by_code.(1));
            Array.iteri
              (fun c k -> sums.(c) <- sums.(c) + k)
              s.Engine.by_code)
          o.Engine.strata;
        Alcotest.(check (array int))
          "object by_code" o.Engine.by_code sums);
  ]

(* ---------------------------------------------------------------- *)
(* End to end: differential validation against held-out ground truth *)

(* Per-object absolute-error tolerances at the held-out size. The
   predictor's level-1 assumption (rates stable across sizes) is only
   approximately true — boundary strata shrink relative to interior ones
   as inputs grow — so tolerances are empirical: the observed holdout
   error at the seed, rounded up with headroom, and documenting roughly
   how strongly each object's rates drift with size. *)
let differential_cases =
  [
    (* bench, object, tolerance *)
    ("MM", "C", 0.06);
    ("ABFT_MM", "C", 0.06);
    ("PF", "xe", 0.08);
    ("ABFT_PF", "xe", 0.08);
    ("BT", "grid_points", 0.08);
    ("LULESH", "m_elemBC", 0.08);
  ]

let differential_tests =
  [
    Alcotest.test_case
      "holdout prediction lands within per-object tolerance" `Slow (fun () ->
        let covered = ref 0 in
        List.iter
          (fun (bench, obj, tol) ->
            let e = Registry.find bench in
            let sizes = Registry.training_sizes e in
            (* train on the first two sizes, hold out the third: ground
               truth at the holdout is a campaign the predictor never
               saw *)
            let train = [ List.nth sizes 0; List.nth sizes 1 ] in
            let holdout = List.nth sizes 2 in
            let p =
              Predict.run
                ~workloads:(workloads_of e train)
                ~object_name:obj ~target:holdout ()
            in
            let ctx = Context.make (e.Registry.workload_at holdout) in
            let plan = Plan.make ctx ~objects:[ obj ] in
            let truth =
              (Engine.run ctx plan).Engine.objects.(0).Engine.estimate
            in
            let err = Float.abs (p.Predict.advf -. truth) in
            if
              p.Predict.advf_ci.Confidence.lo <= truth
              && truth <= p.Predict.advf_ci.Confidence.hi
            then incr covered;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: |%.4f - %.4f| = %.4f <= %.2f" bench obj
                 p.Predict.advf truth err tol)
              true (err <= tol))
          differential_cases;
        (* the conservative weighted-endpoint interval should cover the
           truth for most objects; demand a clear majority *)
        let n = List.length differential_cases in
        Alcotest.(check bool)
          (Printf.sprintf "CI covered truth for %d/%d objects" !covered n)
          true
          (2 * !covered >= n));
  ]

(* ---------------------------------------------------------------- *)
(* Determinism, exactness at training sizes, and the golden snapshot *)

let mm_workloads sizes = workloads_of (Registry.find "MM") sizes

let predict_tests =
  [
    Alcotest.test_case "payload is byte-stable and batch-invariant" `Slow
      (fun () ->
        let run ~batch =
          Predict.run ~batch
            ~workloads:(mm_workloads [ 4; 5 ])
            ~object_name:"C" ~target:6 ()
        in
        let a = Predict_report.stable_json (run ~batch:true) in
        let b = Predict_report.stable_json (run ~batch:true) in
        let c = Predict_report.stable_json (run ~batch:false) in
        Alcotest.(check string) "repeat run" a b;
        Alcotest.(check string) "scalar oracle" a c);
    Alcotest.test_case
      "a training-size target reproduces observed populations" `Slow
      (fun () ->
        let p =
          Predict.run
            ~workloads:(mm_workloads [ 4; 5; 6 ])
            ~object_name:"C" ~target:5 ()
        in
        feq "population at 5"
          (float_of_int (List.assoc 5 p.Predict.populations))
          p.Predict.predicted_population;
        Array.iter
          (fun (s : Predict.stratum_prediction) ->
            feq s.Predict.label
              (float_of_int (List.assoc 5 s.Predict.counts))
              s.Predict.predicted_count)
          p.Predict.strata);
    Alcotest.test_case "too few distinct sizes is refused" `Quick (fun () ->
        match
          Predict.run
            ~workloads:(mm_workloads [ 4 ])
            ~object_name:"C" ~target:8 ()
        with
        | exception Predict.Refused (Predict.Too_few_sizes 1) -> ()
        | _ -> Alcotest.fail "single training size accepted");
    Alcotest.test_case "golden predict snapshot (MM/C, registry ladder)"
      `Slow (fun () ->
        let e = Registry.find "MM" in
        let p =
          Predict.run
            ~workloads:(workloads_of e (Registry.training_sizes e))
            ~object_name:"C"
            ~target:(Registry.holdout_size e)
            ()
        in
        let got = Predict_report.stable_json p in
        let path =
          List.find Sys.file_exists
            [
              "golden_predict.expected";
              "test/golden_predict.expected";
              Filename.concat
                (Filename.dirname Sys.executable_name)
                "golden_predict.expected";
            ]
        in
        let ic = open_in path in
        let n = in_channel_length ic in
        let expected = really_input_string ic n in
        close_in ic;
        Alcotest.(check string) "golden bytes" expected got);
  ]

(* ---------------------------------------------------------------- *)
(* The store: content-addressed predict queries *)

let with_store f =
  let dir = Filename.temp_file "moard_predict_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let store_tests =
  [
    Alcotest.test_case "predict queries hit memory, disk, and recompute"
      `Slow (fun () ->
        with_store (fun dir ->
            let e = Registry.find "MM" in
            let query store =
              Query.predict store ~workload_at:e.Registry.workload_at
                ~object_name:"C" ~sizes:[ 5; 4 ] ~target:6 ()
            in
            let st = Store.open_store ~dir () in
            let p1, s1, r1 = query st in
            Alcotest.(check string)
              "cold compute" "computed" (Query.status_name s1);
            Alcotest.(check bool) "result returned" true (r1 <> None);
            let p2, s2, r2 = query st in
            Alcotest.(check string)
              "warm repeat" "memory-hit" (Query.status_name s2);
            Alcotest.(check bool) "no recompute" true (r2 = None);
            Alcotest.(check string) "same bytes" p1 p2;
            (* a fresh open has a cold LRU: the disk record serves *)
            let p3, s3, _ = query (Store.open_store ~dir ()) in
            Alcotest.(check string)
              "fresh open" "disk-hit" (Query.status_name s3);
            Alcotest.(check string) "disk bytes" p1 p3;
            (* the key canonicalizes sizes: a permutation is the same
               query *)
            let p4, s4, _ =
              Query.predict st ~workload_at:e.Registry.workload_at
                ~object_name:"C" ~sizes:[ 4; 5 ] ~target:6 ()
            in
            Alcotest.(check string)
              "permuted sizes hit" "memory-hit" (Query.status_name s4);
            Alcotest.(check string) "permuted bytes" p1 p4));
  ]

(* ---------------------------------------------------------------- *)
(* The daemon: a served prediction is the offline CLI's bytes *)

module Daemon = Moard_server.Daemon
module Client = Moard_server.Client
module Jsonx = Moard_server.Jsonx

let with_daemon f =
  let dir = Filename.temp_file "moard_predict_daemon" "" in
  Sys.remove dir;
  let socket = Filename.temp_file "moardd_predict" ".sock" in
  Sys.remove socket;
  let cfg =
    { Daemon.default_config with Daemon.socket; store_dir = dir; workers = 2 }
  in
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> Daemon.stop d) (fun () -> f cfg)

let rpc_with cfg req = Client.rpc ~socket:cfg.Daemon.socket req

let daemon_tests =
  [
    Alcotest.test_case "a served prediction byte-matches the offline payload"
      `Slow (fun () ->
        with_daemon (fun cfg ->
            let req =
              Jsonx.Obj
                [
                  ("op", Jsonx.Str "predict");
                  ("benchmark", Jsonx.Str "MM");
                  ("object", Jsonx.Str "C");
                  ("sizes", Jsonx.Arr [ Jsonx.Int 4; Jsonx.Int 5 ]);
                  ("target", Jsonx.Int 6);
                ]
            in
            let h1, p1 = rpc_with cfg req in
            Alcotest.(check (option string))
              "cold" (Some "computed")
              (Jsonx.str (Jsonx.member "served" h1));
            let offline =
              Query.predict_payload
                (Predict.run
                   ~workloads:(mm_workloads [ 4; 5 ])
                   ~object_name:"C" ~target:6 ())
            in
            Alcotest.(check string)
              "daemon equals offline" offline (Option.get p1);
            let h2, p2 = rpc_with cfg req in
            (match Jsonx.str (Jsonx.member "served" h2) with
            | Some ("memory-hit" | "disk-hit") -> ()
            | s ->
              Alcotest.failf "warm predict not a hit: %s"
                (Option.value ~default:"?" s));
            Alcotest.(check string) "warm bytes" offline (Option.get p2);
            (* a refusal comes back as a typed error, not a hangup *)
            let h3, _ =
              rpc_with cfg
                (Jsonx.Obj
                   [
                     ("op", Jsonx.Str "predict");
                     ("benchmark", Jsonx.Str "MM");
                     ("object", Jsonx.Str "C");
                     ("sizes", Jsonx.Arr [ Jsonx.Int 4 ]);
                     ("target", Jsonx.Int 6);
                   ])
            in
            match Client.error_of h3 with
            | Some ("refused", _) -> ()
            | Some (code, _) -> Alcotest.failf "wrong error code: %s" code
            | None -> Alcotest.fail "refusal served as success"));
  ]

let suite =
  [
    ("predict.growth", growth_tests);
    ("predict.fit", fit_tests @ fit_qcheck);
    ("predict.registry", registry_tests);
    ("predict.by_code", by_code_tests);
    ("predict.engine", predict_tests);
    ("predict.store", store_tests);
    ("predict.daemon", daemon_tests);
    ("predict.differential", differential_tests);
  ]
