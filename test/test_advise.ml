(* The resilience advisor: protection transforms measured under every
   error model, protected-variant campaigns with the same determinism
   guarantees as unprotected ones (batched = scalar, fresh = resumed),
   the golden advise snapshot, and the headline acceptance claim — at
   least one object gains >= 5x vulnerability reduction at < 2x
   instruction overhead. *)

module Registry = Moard_kernels.Registry
module Workload = Moard_inject.Workload
module Context = Moard_inject.Context
module Plan = Moard_campaign.Plan
module Engine = Moard_campaign.Engine
module Report = Moard_report.Campaign_report
module Protect = Moard_opt.Protect
module Advise = Moard_advise.Advise
module Advise_report = Moard_report.Advise_report
module Errmodel = Moard_bits.Errmodel
module Store = Moard_store.Store
module Query = Moard_store.Query

let all_models =
  [
    Errmodel.Single_bit;
    Errmodel.Double_adjacent;
    Errmodel.Byte_burst;
    Errmodel.Whole_word;
  ]

let mm_protected plan_transforms =
  let w = Registry.(find "MM").Registry.workload () in
  let plan = { Protect.object_name = "C"; transforms = plan_transforms } in
  (Protect.protect_workload w plan, Protect.plan_id plan)

let stable r = Report.stable_json r

let tmp_journal () = Filename.temp_file "moard_test_advise" ".journal"

(* ---------------------------------------------------------------- *)
(* Protected-variant campaigns: every error model, batched = scalar. *)

let model_tests =
  [
    Alcotest.test_case
      "protected campaigns run under all four error models, batched = \
       scalar" `Slow (fun () ->
        let pw, id = mm_protected [ Protect.Dwc ] in
        let ctx = Context.make pw in
        List.iter
          (fun model ->
            let plan =
              Plan.make ~variant:id ~model ~ci_width:0.05 ctx
                ~objects:[ "C" ]
            in
            let b = Engine.run ~batch:true ctx plan in
            let s = Engine.run ~batch:false ctx plan in
            Alcotest.(check string)
              (Errmodel.to_string model ^ " batched = scalar")
              (stable b) (stable s))
          all_models);
    Alcotest.test_case "dwc masks every single-bit fault on MM/C" `Slow
      (fun () ->
        let pw, id = mm_protected [ Protect.Dwc ] in
        let ctx = Context.make pw in
        let plan = Plan.make ~variant:id ~ci_width:0.05 ctx ~objects:[ "C" ] in
        let r = Engine.run ctx plan in
        let o = r.Engine.objects.(0) in
        Alcotest.(check (float 1e-9)) "aDVF 1.0" 1.0 o.Engine.estimate);
    Alcotest.test_case
      "variant-tagged plans hash apart from unprotected ones" `Quick
      (fun () ->
        let w = Registry.(find "MM").Registry.workload () in
        let pw, id = mm_protected [ Protect.Dwc ] in
        let ctx = Context.make w in
        let pctx = Context.make pw in
        let base = Plan.make ctx ~objects:[ "C" ] in
        let tagged = Plan.make ~variant:id pctx ~objects:[ "C" ] in
        let untagged = Plan.make pctx ~objects:[ "C" ] in
        Alcotest.(check bool) "variant changes the hash" true
          (Plan.hash tagged <> Plan.hash untagged);
        Alcotest.(check bool) "protected differs from unprotected" true
          (Plan.hash tagged <> Plan.hash base));
  ]

(* ---------------------------------------------------------------- *)
(* Journals: a protected-variant campaign killed between batches and
   resumed is bit-identical to an uninterrupted run. *)

let journal_tests =
  [
    Alcotest.test_case "protected variant: fresh = kill + resume" `Slow
      (fun () ->
        let pw, id = mm_protected [ Protect.Dwc ] in
        let ctx = Context.make pw in
        let plan =
          Plan.make ~variant:id ~ci_width:0.05 ~batch:16 ctx
            ~objects:[ "C" ]
        in
        let straight = Engine.run ctx plan in
        let path = tmp_journal () in
        let partial = Engine.run ~journal:path ~max_batches:1 ctx plan in
        Alcotest.(check bool) "harness really interrupted" true
          (partial.Engine.objects.(0).Engine.stopped = Engine.Interrupted);
        let resumed = Engine.resume ~journal:path ctx plan in
        Alcotest.(check string) "resume completes to the same bytes"
          (stable straight) (stable resumed);
        Sys.remove path);
    Alcotest.test_case
      "a protected-variant journal does not resume the base plan" `Slow
      (fun () ->
        let pw, id = mm_protected [ Protect.Dwc ] in
        let ctx = Context.make pw in
        let tagged =
          Plan.make ~variant:id ~ci_width:0.05 ~batch:16 ctx
            ~objects:[ "C" ]
        in
        let untagged =
          Plan.make ~ci_width:0.05 ~batch:16 ctx ~objects:[ "C" ]
        in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ~max_batches:1 ctx tagged);
        (try
           ignore (Engine.resume ~journal:path ctx untagged);
           Alcotest.fail "untagged plan accepted a variant journal"
         with Moard_campaign.Journal.Rejected _ -> ());
        Sys.remove path);
  ]

(* ---------------------------------------------------------------- *)
(* The advisor end to end. One run serves several assertions — each
   advise run re-measures the object and every candidate plan. *)

let mm_advice =
  lazy (Advise.run (Registry.(find "MM").Registry.workload ()))

let advise_tests =
  [
    Alcotest.test_case "advise is deterministic and batch-invariant" `Slow
      (fun () ->
        let w = Registry.(find "MM").Registry.workload () in
        let a = Advise_report.stable_json (Lazy.force mm_advice) in
        let b = Advise_report.stable_json (Advise.run w) in
        let c = Advise_report.stable_json (Advise.run ~batch:false w) in
        Alcotest.(check string) "repeat run" a b;
        Alcotest.(check string) "scalar oracle" a c);
    Alcotest.test_case "MM/C: >= 5x vulnerability reduction at < 2x \
                        overhead" `Slow (fun () ->
        let r = Lazy.force mm_advice in
        let o = List.hd r.Advise.objects in
        Alcotest.(check string) "object" "C" o.Advise.object_name;
        let wins =
          List.filter
            (fun (p : Advise.plan_outcome) ->
              p.Advise.reduction >= 5.0 && p.Advise.overhead < 2.0)
            o.Advise.plans
        in
        Alcotest.(check bool) "at least one winning plan" true (wins <> []);
        (match o.Advise.recommended with
        | Some id ->
          Alcotest.(check bool) "recommended plan is a winner" true
            (List.exists (fun (p : Advise.plan_outcome) -> p.Advise.id = id) wins)
        | None -> Alcotest.fail "no recommended plan"));
    Alcotest.test_case "pareto front excludes dominated plans" `Slow
      (fun () ->
        let r = Lazy.force mm_advice in
        List.iter
          (fun (o : Advise.object_advice) ->
            List.iter
              (fun (p : Advise.plan_outcome) ->
                let dominated =
                  List.exists
                    (fun (q : Advise.plan_outcome) ->
                      q.Advise.vulnerability <= p.Advise.vulnerability
                      && q.Advise.overhead <= p.Advise.overhead
                      && (q.Advise.vulnerability < p.Advise.vulnerability
                         || q.Advise.overhead < p.Advise.overhead))
                    o.Advise.plans
                  || (o.Advise.vulnerability <= p.Advise.vulnerability
                      && 1.0 <= p.Advise.overhead
                      && (o.Advise.vulnerability < p.Advise.vulnerability
                         || 1.0 < p.Advise.overhead))
                in
                Alcotest.(check bool)
                  (p.Advise.id ^ " pareto flag")
                  (not dominated) p.Advise.pareto)
              o.Advise.plans)
          r.Advise.objects);
    Alcotest.test_case "golden advise snapshot (MM)" `Slow (fun () ->
        let got = Advise_report.stable_json (Lazy.force mm_advice) in
        let path =
          List.find Sys.file_exists
            [
              "golden_advise.expected";
              "test/golden_advise.expected";
              Filename.concat
                (Filename.dirname Sys.executable_name)
                "golden_advise.expected";
            ]
        in
        let ic = open_in path in
        let n = in_channel_length ic in
        let expected = really_input_string ic n in
        close_in ic;
        Alcotest.(check string) "golden bytes" expected got);
  ]

(* ---------------------------------------------------------------- *)
(* The store: content-addressed advise queries. *)

let with_store f =
  let dir = Filename.temp_file "moard_advise_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let store_tests =
  [
    Alcotest.test_case "advise queries cache and replay identical bytes"
      `Slow (fun () ->
        with_store (fun dir ->
            let w = Registry.(find "MM").Registry.workload () in
            let st = Store.open_store ~dir () in
            let query () = Query.advise st ~workload:w ~objects:[ "C" ] () in
            let p1, s1 = query () in
            Alcotest.(check string)
              "cold compute" "computed" (Query.status_name s1);
            let p2, s2 = query () in
            Alcotest.(check string)
              "warm repeat" "memory-hit" (Query.status_name s2);
            Alcotest.(check string) "identical bytes" p1 p2;
            (* the explicit object list and the default spell the same
               key: MM's only target is C *)
            let p3, _ = Query.advise st ~workload:w ~objects:[] () in
            Alcotest.(check string) "default objects, same entry" p1 p3));
  ]

let suite =
  [
    ("advise.models", model_tests);
    ("advise.journal", journal_tests);
    ("advise.report", advise_tests);
    ("advise.store", store_tests);
  ]
