(* The streaming trace pipeline: packed-tape round-trips, cursor windows,
   online aDVF accumulation, the shared-golden-run parallel driver, and the
   bit-identity golden snapshot over every Table-I data object. *)

module Tape = Moard_trace.Tape
module Event = Moard_trace.Event
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Machine = Moard_vm.Machine
module Model = Moard_core.Model
module Advf = Moard_core.Advf
module Verdict = Moard_core.Verdict

let traced_registry = Hashtbl.create 16

let trace_of (e : Registry.entry) =
  match Hashtbl.find_opt traced_registry e.Registry.benchmark with
  | Some t -> t
  | None ->
    let w = e.Registry.workload () in
    let m = Machine.load w.Moard_inject.Workload.program in
    let _, tape = Machine.trace m ~entry:w.Moard_inject.Workload.entry in
    Hashtbl.replace traced_registry e.Registry.benchmark tape;
    tape

(* ------------------------------------------------------------------ *)
(* Packed tape                                                         *)

let tape_tests =
  [
    Alcotest.test_case "append round-trips the emit encoding" `Quick
      (fun () ->
        let tape = trace_of (Registry.find "CG") in
        let rebuilt = Tape.create () in
        for i = 0 to min 2000 (Tape.length tape) - 1 do
          Tape.append rebuilt (Tape.get tape i)
        done;
        for i = 0 to Tape.length rebuilt - 1 do
          if Tape.get tape i <> Tape.get rebuilt i then
            Alcotest.failf "event %d differs after re-append" i
        done);
    Alcotest.test_case "field accessors agree with the decoded view" `Quick
      (fun () ->
        let tape = trace_of (Registry.find "LULESH") in
        for i = 0 to Tape.length tape - 1 do
          let e = Tape.get tape i in
          assert (Tape.frame_at tape i = e.Event.frame);
          assert (Moard_ir.Iid.equal (Tape.iid_at tape i) e.Event.iid);
          assert (Tape.instr_at tape i = e.Event.instr);
          assert (Tape.nreads_at tape i = Array.length e.Event.reads);
          assert (Tape.load_addr_at tape i = e.Event.load_addr);
          (match e.Event.write with
          | Event.Wmem { addr; _ } -> assert (Tape.write_addr_at tape i = addr)
          | Event.Wreg _ | Event.Wnone ->
            assert (Tape.write_addr_at tape i = -1));
          Array.iteri
            (fun slot (r : Event.read) ->
              assert (
                Moard_bits.Bitval.equal (Tape.read_value tape i slot) r.value);
              assert (Tape.read_prov tape i slot = r.prov))
            e.Event.reads
        done);
    Alcotest.test_case "golden tapes come back frozen" `Quick (fun () ->
        let tape = trace_of (Registry.find "CG") in
        assert (Tape.is_frozen tape);
        Alcotest.check_raises "emit on frozen"
          (Invalid_argument "Tape.emit: tape is frozen") (fun () ->
            Tape.append tape (Tape.get tape 0)));
    Alcotest.test_case "packed storage is at least 2x smaller than boxed"
      `Quick (fun () ->
        let tape = trace_of (Registry.find "AMG") in
        let packed = Tape.packed_bytes tape in
        let boxed = Tape.boxed_bytes_estimate tape in
        if packed * 2 > boxed then
          Alcotest.failf "packed %d bytes vs boxed %d bytes: less than 2x"
            packed boxed);
  ]

(* ------------------------------------------------------------------ *)
(* Cursor windows vs whole-tape slicing, on every registry kernel      *)

let slice tape lo hi =
  let lo = max 0 (min lo (Tape.length tape)) in
  let hi = max lo (min hi (Tape.length tape)) in
  List.init (hi - lo) (fun i -> Tape.get tape (lo + i))

let windows_of tape =
  let n = Tape.length tape in
  [ (0, n); (0, 1); (n / 3, (n / 3) + 50); (n - 7, n + 25); (-5, 9); (n, n) ]

let cursor_tests =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case
        (Printf.sprintf "windowed iteration = slicing (%s)"
           e.Registry.benchmark)
        `Quick
        (fun () ->
          let tape = trace_of e in
          List.iter
            (fun (lo, hi) ->
              let c = Tape.Cursor.window tape ~lo ~hi in
              let got = List.rev (Tape.Cursor.fold_events
                                    (fun acc i ev ->
                                      assert (i = ev.Event.idx);
                                      ev :: acc)
                                    [] c)
              in
              if got <> slice tape lo hi then
                Alcotest.failf "window [%d, %d) differs from slice" lo hi)
            (windows_of tape)))
    Registry.all
  @ [
      Alcotest.test_case "seek, sub-windows and bounds" `Quick (fun () ->
          let tape = trace_of (Registry.find "CG") in
          let c = Tape.Cursor.of_tape tape in
          Alcotest.(check int) "full window" (Tape.length tape)
            (Tape.Cursor.length c);
          Tape.Cursor.seek c 100;
          Alcotest.(check int) "pos" 100 (Tape.Cursor.pos c);
          assert ((Tape.Cursor.next c).Event.idx = 100);
          let s = Tape.Cursor.sub c ~lo:50 ~hi:60 in
          Alcotest.(check int) "sub lo" 50 (Tape.Cursor.lo s);
          Alcotest.(check int) "sub hi" 60 (Tape.Cursor.hi s);
          Tape.Cursor.seek s 9999;
          Alcotest.(check int) "seek clamps" 60 (Tape.Cursor.pos s);
          assert (not (Tape.Cursor.has_next s));
          Alcotest.check_raises "next past end"
            (Invalid_argument "Tape.Cursor.next") (fun () ->
              ignore (Tape.Cursor.next s)));
      Alcotest.test_case "iter_sites equals of_tape site order" `Quick
        (fun () ->
          let e = Registry.find "CG" in
          let w = e.Registry.workload () in
          let m = Machine.load w.Moard_inject.Workload.program in
          let _, tape = Machine.trace m ~entry:w.Moard_inject.Workload.entry in
          let obj = Machine.object_of m "colidx" in
          let streamed = ref [] in
          Moard_trace.Consume.iter_sites (Tape.Cursor.of_tape tape) obj
            (fun i s -> streamed := (i, s) :: !streamed);
          let streamed = List.rev !streamed in
          let listed = Moard_trace.Consume.of_tape tape obj in
          Alcotest.(check int) "site count" (List.length listed)
            (List.length streamed);
          List.iteri
            (fun i (j, s) ->
              assert (i = j);
              assert (s = List.nth listed i))
            streamed);
    ]

(* ------------------------------------------------------------------ *)
(* Online aDVF accumulation: qcheck merge/absorb properties            *)

let close = Alcotest.float 1e-9

let verdict_gen =
  QCheck2.Gen.(
    oneof
      [
        return Verdict.Not_masked;
        map2
          (fun l k -> Verdict.Masked (l, k))
          (oneofl [ Verdict.Operation; Verdict.Propagation; Verdict.Algorithm ])
          (oneofl
             [
               Verdict.Overwrite; Verdict.Logic_cmp; Verdict.Overshadow;
               Verdict.Other;
             ]);
      ])

let stage_gen =
  QCheck2.Gen.oneofl [ Advf.Op; Advf.Prop; Advf.Fi; Advf.Cached; Advf.Gave_up ]

(* A site: some error patterns, each with a stage and a verdict. The lane
   count must divide the single-bit weight denominator (64), as every real
   error model's lane count does at every width. *)
let site_gen =
  QCheck2.Gen.(list_size (oneofl [ 1; 2; 4; 8 ]) (pair stage_gen verdict_gen))

let stream_gen = QCheck2.Gen.(list_size (int_range 0 40) site_gen)

let feed acc sites =
  List.iter
    (fun patterns ->
      Advf.add_involvement acc;
      let lanes = List.length patterns in
      List.iter
        (fun (stage, verdict) -> Advf.add_pattern acc ~lanes ~stage verdict)
        patterns)
    sites

let report_of sites =
  let acc = Advf.create "x" in
  feed acc sites;
  Advf.report acc ~fi_runs:0 ~fi_cache_hits:0

let check_reports_equal msg (a : Advf.report) (b : Advf.report) =
  Alcotest.(check int) (msg ^ ": involvements") a.Advf.involvements
    b.Advf.involvements;
  Alcotest.(check int) (msg ^ ": patterns") a.Advf.patterns_analyzed
    b.Advf.patterns_analyzed;
  Alcotest.(check int) (msg ^ ": op") a.Advf.op_resolved b.Advf.op_resolved;
  Alcotest.(check int) (msg ^ ": fi") a.Advf.fi_resolved b.Advf.fi_resolved;
  Alcotest.check close (msg ^ ": advf") a.Advf.advf b.Advf.advf;
  Alcotest.check close (msg ^ ": events") a.Advf.masking_events
    b.Advf.masking_events;
  Array.iteri
    (fun i x -> Alcotest.check close (msg ^ ": level") x b.Advf.by_level.(i))
    a.Advf.by_level;
  Array.iteri
    (fun i x -> Alcotest.check close (msg ^ ": kind") x b.Advf.by_kind.(i))
    a.Advf.by_kind

let advf_stream_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:"online accumulator equals batch accumulator"
         QCheck2.Gen.(pair stream_gen (int_range 0 40))
         (fun (stream, cut) ->
           let cut = min cut (List.length stream) in
           let first = List.filteri (fun i _ -> i < cut) stream
           and rest = List.filteri (fun i _ -> i >= cut) stream in
           (* online: one accumulator over the whole stream *)
           let online = report_of stream in
           (* batch: per-shard accumulators, folded with absorb *)
           let a = Advf.create "x" and b = Advf.create "x" in
           feed a first;
           feed b rest;
           Advf.absorb a b;
           let batch = Advf.report a ~fi_runs:0 ~fi_cache_hits:0 in
           check_reports_equal "online=batch" online batch;
           true));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"Advf.merge is commutative"
         QCheck2.Gen.(pair stream_gen stream_gen)
         (fun (sa, sb) ->
           let ra = report_of sa and rb = report_of sb in
           check_reports_equal "comm" (Advf.merge [ ra; rb ])
             (Advf.merge [ rb; ra ]);
           true));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"Advf.merge is associative"
         QCheck2.Gen.(triple stream_gen stream_gen stream_gen)
         (fun (sa, sb, sc) ->
           let ra = report_of sa
           and rb = report_of sb
           and rc = report_of sc in
           let left = Advf.merge [ Advf.merge [ ra; rb ]; rc ]
           and right = Advf.merge [ ra; Advf.merge [ rb; rc ] ]
           and flat = Advf.merge [ ra; rb; rc ] in
           check_reports_equal "assoc l=r" left right;
           check_reports_equal "assoc l=flat" left flat;
           true));
    Alcotest.test_case "absorb rejects mixed objects" `Quick (fun () ->
        let a = Advf.create "x" and b = Advf.create "y" in
        match Advf.absorb a b with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
  ]

(* ------------------------------------------------------------------ *)
(* Shared golden run                                                   *)

let shared_golden_tests =
  [
    Alcotest.test_case "parallel driver runs the golden execution once"
      `Slow (fun () ->
        let g0 = Context.golden_executions () in
        let r =
          Moard_parallel.Parallel_model.analyze ~domains:3
            ~workload:(fun () -> Moard_kernels.Lulesh.workload ~nelem:6 ())
            ~object_name:"m_elemBC" ()
        in
        assert (r.Advf.advf >= 0.0 && r.Advf.advf <= 1.0);
        Alcotest.(check int) "golden executions" 1
          (Context.golden_executions () - g0));
    Alcotest.test_case "analyze_ctx shares one golden run across objects"
      `Slow (fun () ->
        let g0 = Context.golden_executions () in
        let ctx =
          Context.make (Moard_kernels.Lulesh.workload ~nelem:6 ())
        in
        List.iter
          (fun obj ->
            ignore
              (Moard_parallel.Parallel_model.analyze_ctx ~domains:2 ctx
                 ~object_name:obj))
          [ "m_elemBC"; "m_delv_zeta" ];
        Alcotest.(check int) "golden executions" 1
          (Context.golden_executions () - g0));
    Alcotest.test_case "shard shares tape but not caches" `Quick (fun () ->
        let ctx =
          Context.make (Moard_kernels.Lulesh.workload ~nelem:6 ())
        in
        let s = Context.shard ctx in
        assert (Context.tape s == Context.tape ctx);
        ignore
          (Model.analyze
             ~options:{ Model.default_options with Model.fi_budget = 5 }
             s ~object_name:"m_elemBC");
        Alcotest.(check int) "parent runs untouched" 0 (Context.runs ctx);
        assert (Context.runs s > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Golden snapshot: every Table-I data object, bit-exact               *)

let golden_options = { Model.default_options with Model.fi_budget = 1000 }

let golden_tests =
  [
    Alcotest.test_case "aDVF of all Table-I objects matches the snapshot"
      `Slow (fun () ->
        let path =
          List.find Sys.file_exists
            [
              "golden_advf.expected"; "test/golden_advf.expected";
              Filename.concat
                (Filename.dirname Sys.executable_name)
                "golden_advf.expected";
            ]
        in
        let expected = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line expected :: !lines
           done
         with End_of_file -> close_in expected);
        let lines = List.rev !lines in
        let ctxs = Hashtbl.create 8 in
        let ctx_of name =
          match Hashtbl.find_opt ctxs name with
          | Some c -> c
          | None ->
            let c =
              Context.make ((Registry.find name).Registry.workload ())
            in
            Hashtbl.replace ctxs name c;
            c
        in
        Alcotest.(check int) "snapshot rows" 16 (List.length lines);
        List.iter
          (fun line ->
            match String.split_on_char ' ' line with
            | bench :: obj :: rest ->
              let r =
                Model.analyze ~options:golden_options (ctx_of bench)
                  ~object_name:obj
              in
              let got =
                string_of_int r.Advf.involvements
                :: List.map (Printf.sprintf "%h")
                     ([ r.Advf.masking_events; r.Advf.advf ]
                     @ Array.to_list r.Advf.by_level
                     @ Array.to_list r.Advf.by_kind)
              in
              if got <> rest then
                Alcotest.failf "%s/%s drifted:\n  expected %s\n  got      %s"
                  bench obj
                  (String.concat " " rest)
                  (String.concat " " got)
            | _ -> Alcotest.failf "malformed snapshot line: %s" line)
          lines);
  ]

let suite =
  [
    ("pipeline.tape", tape_tests);
    ("pipeline.cursor", cursor_tests);
    ("pipeline.advf-stream", advf_stream_tests);
    ("pipeline.shared-golden", shared_golden_tests);
    ("pipeline.golden-snapshot", golden_tests);
  ]
