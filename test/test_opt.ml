(* The optimizer: pass-level unit tests plus differential execution over
   every benchmark (optimized programs must behave identically). *)

module Passes = Moard_opt.Passes
module I = Moard_ir.Instr
module T = Moard_ir.Types
module P = Moard_ir.Program
module B = Moard_ir.Builder
module Machine = Moard_vm.Machine
module Bitval = Moard_bits.Bitval

let imm n = I.Imm (Bitval.of_int64 n)
let fimm x = I.Imm (Bitval.of_float x)

let count_instrs (fn : P.func) =
  Array.fold_left (fun acc b -> acc + Array.length b) 0 fn.P.blocks

let find_instr (fn : P.func) pred =
  Array.exists (Array.exists pred) fn.P.blocks

let mk body nregs =
  { P.fname = "f"; nparams = 0; nregs; blocks = [| Array.of_list body |] }

let pass_tests =
  [
    Alcotest.test_case "const_fold evaluates immediate arithmetic" `Quick
      (fun () ->
        let fn =
          mk [ I.Ibin (0, I.Add, T.I64, imm 2L, imm 3L); I.Ret (Some (I.Reg 0)) ] 1
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function
          | I.Mov (0, I.Imm v) -> Int64.equal (Bitval.to_int64 v) 5L
          | _ -> false)));
    Alcotest.test_case "const_fold keeps trapping division" `Quick (fun () ->
        let fn =
          mk [ I.Ibin (0, I.Sdiv, T.I64, imm 2L, imm 0L); I.Ret None ] 1
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function I.Ibin (_, I.Sdiv, _, _, _) -> true | _ -> false)));
    Alcotest.test_case "const_fold folds float compares and selects" `Quick
      (fun () ->
        let fn =
          mk
            [
              I.Fcmp (0, I.Folt, fimm 1.0, fimm 2.0);
              I.Select (1, imm 1L, fimm 7.0, fimm 9.0);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.const_fold fn in
        assert (find_instr fn' (function
          | I.Mov (1, I.Imm v) -> Float.equal (Bitval.to_float v) 7.0
          | _ -> false)));
    Alcotest.test_case "copy_prop forwards moves into uses" `Quick (fun () ->
        let fn =
          mk
            [
              I.Mov (0, imm 4L);
              I.Ibin (1, I.Add, T.I64, I.Reg 0, imm 1L);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.copy_prop fn in
        assert (find_instr fn' (function
          | I.Ibin (1, I.Add, _, I.Imm _, _) -> true
          | _ -> false)));
    Alcotest.test_case "copy_prop invalidates on redefinition" `Quick
      (fun () ->
        let fn =
          mk
            [
              I.Mov (0, imm 4L);
              I.Mov (0, imm 9L);
              I.Ibin (1, I.Add, T.I64, I.Reg 0, imm 1L);
              I.Ret (Some (I.Reg 1));
            ]
            2
        in
        let fn' = Passes.copy_prop fn in
        assert (find_instr fn' (function
          | I.Ibin (1, I.Add, _, I.Imm v, _) ->
            Int64.equal (Bitval.to_int64 v) 9L
          | _ -> false)));
    Alcotest.test_case "branch_simplify rewrites constant conditions" `Quick
      (fun () ->
        let fn =
          {
            P.fname = "f"; nparams = 0; nregs = 0;
            blocks =
              [|
                [| I.Cbr (I.Imm (Bitval.of_bool true), 1, 2) |];
                [| I.Ret None |];
                [| I.Ret None |];
              |];
          }
        in
        let fn' = Passes.branch_simplify fn in
        assert (find_instr fn' (function I.Br 1 -> true | _ -> false)));
    Alcotest.test_case "dce removes dead pure chains" `Quick (fun () ->
        let fn =
          mk
            [
              I.Ibin (0, I.Add, T.I64, imm 1L, imm 2L);  (* dead *)
              I.Ibin (1, I.Mul, T.I64, I.Reg 0, imm 3L); (* dead *)
              I.Ret None;
            ]
            2
        in
        let fn' = Passes.dce fn in
        Alcotest.(check int) "only ret remains" 1 (count_instrs fn'));
    Alcotest.test_case "dce keeps stores, calls and traps" `Quick (fun () ->
        let fn =
          mk
            [
              I.Store (T.F64, fimm 1.0, imm 512L);
              I.Call (Some 0, "sqrt", [ fimm 4.0 ]); (* dest dead, call kept *)
              I.Ibin (1, I.Sdiv, T.I64, imm 1L, imm 0L); (* may trap *)
              I.Ret None;
            ]
            2
        in
        let fn' = Passes.dce fn in
        Alcotest.(check int) "all kept" 4 (count_instrs fn'));
    Alcotest.test_case "optimize_func reaches a fixpoint" `Quick (fun () ->
        let fn =
          mk
            [
              I.Ibin (0, I.Add, T.I64, imm 2L, imm 3L);
              I.Ibin (1, I.Mul, T.I64, I.Reg 0, imm 4L);
              I.Mov (2, I.Reg 1);
              I.Ret (Some (I.Reg 2));
            ]
            3
        in
        let fn' = Passes.optimize_func fn in
        (* everything folds into returning the immediate 20 *)
        assert (count_instrs fn' <= 2);
        assert (find_instr fn' (function
          | I.Ret (Some (I.Imm v)) -> Int64.equal (Bitval.to_int64 v) 20L
          | I.Ret (Some (I.Reg _)) -> true
          | _ -> false)));
  ]

(* Differential execution: every benchmark behaves identically at every
   optimization level and under every individual pass. The observation
   is (output bit images | trap): a transformed program must finish with
   the same bytes, or trap with the same trap, as the original. *)
type observed = Out of int64 list | Trap of string

let observe (w : Moard_inject.Workload.t) prog =
  let m = Machine.load prog in
  let r = Machine.run m ~entry:w.Moard_inject.Workload.entry in
  match r.Machine.outcome with
  | Machine.Finished _ ->
    Out
      (List.concat_map
         (fun name ->
           match (P.global prog name).P.gty with
           | T.F64 ->
             Array.to_list
               (Array.map Int64.bits_of_float
                  (Machine.read_f64s m r.Machine.mem name))
           | _ -> Array.to_list (Machine.read_i64s m r.Machine.mem name))
         w.Moard_inject.Workload.outputs)
  | Machine.Trapped t -> Trap (Moard_vm.Trap.to_string t)

let check_observed bench what plain transformed =
  match (plain, transformed) with
  | Out a, Out b ->
    if a <> b then Alcotest.failf "%s: %s outputs differ" bench what
  | Trap a, Trap b ->
    if a <> b then
      Alcotest.failf "%s: %s trap differs (%s vs %s)" bench what a b
  | Out _, Trap t ->
    Alcotest.failf "%s: %s trapped (%s) where the original finished" bench
      what t
  | Trap t, Out _ ->
    Alcotest.failf "%s: %s finished where the original trapped (%s)" bench
      what t

let differential_tests =
  [
    Alcotest.test_case
      "benchmarks behave identically per pass and at every level" `Slow
      (fun () ->
        let named_passes =
          [
            ("const_fold", Passes.const_fold);
            ("copy_prop", Passes.copy_prop);
            ("branch_simplify", Passes.branch_simplify);
            ("dce", Passes.dce);
          ]
        in
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let bench = e.Moard_kernels.Registry.benchmark in
            let w = e.Moard_kernels.Registry.workload () in
            let prog = w.Moard_inject.Workload.program in
            let plain = observe w prog in
            (* every level, trap-equivalent *)
            List.iter
              (fun level ->
                check_observed bench
                  (Printf.sprintf "-O%d" level)
                  plain
                  (observe w (Passes.optimize ~level prog)))
              [ 0; 1; 2 ];
            (* every single pass in isolation, trap-equivalent *)
            List.iter
              (fun (name, pass) ->
                let p =
                  {
                    prog with
                    P.funcs =
                      List.map
                        (fun fn -> Passes.optimize_func ~passes:[ pass ] fn)
                        prog.P.funcs;
                  }
                in
                check_observed bench name plain (observe w p))
              named_passes)
          Moard_kernels.Registry.all);
    Alcotest.test_case "optimization shortens traces" `Quick (fun () ->
        let w = Moard_kernels.Lulesh.workload () in
        let steps prog =
          let m = Machine.load prog in
          (Machine.run m ~entry:"main").Machine.steps
        in
        let before = steps w.Moard_inject.Workload.program in
        let after = steps (Passes.optimize w.Moard_inject.Workload.program) in
        assert (after <= before));
    Alcotest.test_case "optimized programs still validate" `Quick (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let p = Passes.optimize w.Moard_inject.Workload.program in
            match
              Moard_ir.Validate.check_program
                ~intrinsics:Moard_vm.Semantics.intrinsics p
            with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg)
          Moard_kernels.Registry.all);
  ]

(* Protection transforms: candidate plans for every registry object must
   validate and be behaviour-preserving fault-free — bit-identical
   outputs and identical trap behaviour — since protection that changes
   the golden run would corrupt every downstream measurement. *)
module Protect = Moard_opt.Protect

let protect_tests =
  [
    Alcotest.test_case "plan ids and transform names roundtrip" `Quick
      (fun () ->
        List.iter
          (fun t ->
            Alcotest.(check (option bool))
              "roundtrip" (Some true)
              (Option.map
                 (fun t' -> t' = t)
                 (Protect.transform_of_name (Protect.transform_name t))))
          [ Protect.Abft; Protect.Clamp; Protect.Dwc ];
        Alcotest.(check string)
          "id" "C:clamp+dwc"
          (Protect.plan_id
             {
               Protect.object_name = "C";
               transforms = [ Protect.Clamp; Protect.Dwc ];
             }));
    Alcotest.test_case "every candidate plan validates" `Quick (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let segment fn = Moard_inject.Workload.in_segment w fn in
            List.iter
              (fun obj ->
                List.iter
                  (fun plan ->
                    let p =
                      Protect.apply w.Moard_inject.Workload.program ~segment
                        plan
                    in
                    match
                      Moard_ir.Validate.check_program
                        ~intrinsics:Moard_vm.Semantics.intrinsics p
                    with
                    | Ok () -> ()
                    | Error msg ->
                      Alcotest.failf "%s %s: %s"
                        e.Moard_kernels.Registry.benchmark
                        (Protect.plan_id plan) msg)
                  (Protect.candidates w.Moard_inject.Workload.program
                     ~segment ~obj))
              w.Moard_inject.Workload.targets)
          Moard_kernels.Registry.all);
    Alcotest.test_case
      "every candidate plan is behaviour-preserving fault-free" `Slow
      (fun () ->
        List.iter
          (fun (e : Moard_kernels.Registry.entry) ->
            let w = e.Moard_kernels.Registry.workload () in
            let segment fn = Moard_inject.Workload.in_segment w fn in
            let plain = observe w w.Moard_inject.Workload.program in
            List.iter
              (fun obj ->
                List.iter
                  (fun plan ->
                    let pw = Protect.protect_workload w plan in
                    check_observed e.Moard_kernels.Registry.benchmark
                      (Protect.plan_id plan) plain
                      (observe pw pw.Moard_inject.Workload.program))
                  (Protect.candidates w.Moard_inject.Workload.program
                     ~segment ~obj))
              w.Moard_inject.Workload.targets)
          Moard_kernels.Registry.all);
    Alcotest.test_case "dwc adds instructions but not sites" `Quick (fun () ->
        let w = Moard_kernels.Abft_mm.workload () in
        let plan = { Protect.object_name = "C"; transforms = [ Protect.Dwc ] } in
        let pw = Protect.protect_workload w plan in
        let steps prog entry =
          let m = Machine.load prog in
          (Machine.run m ~entry).Machine.steps
        in
        let before =
          steps w.Moard_inject.Workload.program
            w.Moard_inject.Workload.entry
        in
        let after =
          steps pw.Moard_inject.Workload.program
            pw.Moard_inject.Workload.entry
        in
        assert (after > before));
  ]

let suite =
  [
    ("opt.passes", pass_tests);
    ("opt.differential", differential_tests);
    ("opt.protect", protect_tests);
  ]
