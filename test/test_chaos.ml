(* The chaos layer (PR: chaos harness + resilience).

   Bottom up: the seeded per-scope fault plan (deterministic, prefix-
   stable, interleaving-independent), the cancel token and its hooks in
   the analysis paths, the injectable filesystem effects, the store's
   quarantine breaker and fsck, protocol robustness under fuzzed bytes,
   and finally the full harness: same seed, same faults, same survival
   report — and the serving invariant holds. *)

module Chaos = Moard_chaos.Chaos
module Cancel = Moard_chaos.Cancel
module Fx = Moard_chaos.Fx
module Record = Moard_store.Record
module Key = Moard_store.Key
module Store = Moard_store.Store
module Protocol = Moard_server.Protocol
module Jsonx = Moard_server.Jsonx
module Harness = Moard_server.Chaos_harness
module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Model = Moard_core.Model

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------------------------------------------------------- *)
(* The seeded fault plan *)

let drain plan scope n =
  let log = ref [] in
  for _ = 1 to n do
    match Chaos.draw plan scope with
    | Some f -> log := f :: !log
    | None -> ()
  done;
  List.rev !log

let plan_tests =
  [
    Alcotest.test_case "same seed, same schedule (and hash)" `Quick (fun () ->
        let mk () = Chaos.make ~rates:(fun _ -> 0.3) ~seed:42 () in
        let a = mk () and b = mk () in
        let fa = drain a Chaos.Store_read 200 @ drain a Chaos.Job 100 in
        let fb = drain b Chaos.Store_read 200 @ drain b Chaos.Job 100 in
        Alcotest.(check bool) "faults fired at 0.3 over 300 ops" true
          (List.length fa > 0);
        Alcotest.(check bool) "identical fault sequences" true (fa = fb);
        Alcotest.(check string) "identical schedule hash"
          (Chaos.schedule_hash a) (Chaos.schedule_hash b));
    Alcotest.test_case "per-scope streams are interleaving-independent"
      `Quick (fun () ->
        (* the store-read schedule must not depend on how many job or
           socket operations happened in between *)
        let a = Chaos.make ~rates:(fun _ -> 0.3) ~seed:9 () in
        let b = Chaos.make ~rates:(fun _ -> 0.3) ~seed:9 () in
        let fa = drain a Chaos.Store_read 150 in
        ignore (drain b Chaos.Job 500);
        ignore (drain b Chaos.Sock_recv 77);
        let fb = drain b Chaos.Store_read 150 in
        Alcotest.(check bool) "store-read stream unmoved" true (fa = fb));
    Alcotest.test_case "prefix stability: shorter run = prefix of longer"
      `Quick (fun () ->
        let a = Chaos.make ~rates:(fun _ -> 0.3) ~seed:5 () in
        let b = Chaos.make ~rates:(fun _ -> 0.3) ~seed:5 () in
        let long = drain a Chaos.Sock_send 300 in
        let short = drain b Chaos.Sock_send 120 in
        let rec is_prefix p l =
          match (p, l) with
          | [], _ -> true
          | x :: p', y :: l' -> x = y && is_prefix p' l'
          | _ -> false
        in
        Alcotest.(check bool) "prefix" true (is_prefix short long));
    Alcotest.test_case "different seeds diverge; stats count ops and hits"
      `Quick (fun () ->
        let a = Chaos.make ~rates:(fun _ -> 0.5) ~seed:1 () in
        let b = Chaos.make ~rates:(fun _ -> 0.5) ~seed:2 () in
        ignore (drain a Chaos.Store_write 200);
        ignore (drain b Chaos.Store_write 200);
        Alcotest.(check bool) "hashes differ" true
          (Chaos.schedule_hash a <> Chaos.schedule_hash b);
        let ops, injected =
          List.fold_left
            (fun (o, i) (s, ops, inj) ->
              if s = Chaos.Store_write then (o + ops, i + inj) else (o, i))
            (0, 0) (Chaos.stats a)
        in
        Alcotest.(check int) "every draw is an op" 200 ops;
        Alcotest.(check bool) "roughly half fired" true
          (injected > 50 && injected < 150));
    Alcotest.test_case "rate 0 is silent, disabled scopes never fire" `Quick
      (fun () ->
        let p =
          Chaos.make
            ~rates:(fun s -> if s = Chaos.Job then 1.0 else 0.0)
            ~seed:3 ()
        in
        Alcotest.(check int) "quiet scope" 0
          (List.length (drain p Chaos.Store_read 500));
        Alcotest.(check int) "hot scope fires every op" 64
          (List.length (drain p Chaos.Job 64)));
  ]

(* ---------------------------------------------------------------- *)
(* Cancellation *)

let mm_ctx_cache = ref None

let mm_ctx () =
  match !mm_ctx_cache with
  | Some c -> c
  | None ->
    let e = Registry.find "MM" in
    let c = Context.make (e.Registry.workload ()) in
    mm_ctx_cache := Some c;
    c

let cancel_tests =
  [
    Alcotest.test_case "token semantics: fresh, tripped, expired" `Quick
      (fun () ->
        let c = Cancel.create () in
        Alcotest.(check bool) "fresh" false (Cancel.cancelled c);
        Cancel.check c;
        Cancel.cancel c;
        Alcotest.(check bool) "tripped" true (Cancel.cancelled c);
        (match Cancel.check c with
        | exception Cancel.Cancelled _ -> ()
        | () -> Alcotest.fail "tripped token passed check");
        let d = Cancel.create ~deadline_s:0.005 () in
        Alcotest.(check bool) "not yet expired... probably" true
          (Cancel.remaining_s d <= 0.005);
        Unix.sleepf 0.02;
        Alcotest.(check bool) "expired" true (Cancel.cancelled d);
        Alcotest.(check (float 0.0)) "no time left" 0.0 (Cancel.remaining_s d);
        match Cancel.check d with
        | exception Cancel.Cancelled why ->
          Alcotest.(check string) "names the deadline" "deadline exceeded" why
        | () -> Alcotest.fail "expired token passed check");
    Alcotest.test_case "a tripped token aborts Model.analyze mid-sweep"
      `Quick (fun () ->
        let c = Cancel.create () in
        Cancel.cancel c;
        match Model.analyze ~cancel:c (mm_ctx ()) ~object_name:"C" with
        | exception Cancel.Cancelled _ -> ()
        | _ -> Alcotest.fail "cancelled analysis ran to completion");
    Alcotest.test_case "a tripped token aborts an exhaustive campaign" `Quick
      (fun () ->
        let c = Cancel.create () in
        Cancel.cancel c;
        match
          Moard_inject.Exhaustive.campaign ~cancel:c (mm_ctx ())
            ~object_name:"C"
        with
        | exception Cancel.Cancelled _ -> ()
        | _ -> Alcotest.fail "cancelled campaign ran to completion");
  ]

(* ---------------------------------------------------------------- *)
(* Injectable filesystem effects *)

let tmp_path () =
  let p = Filename.temp_file "moard_test_chaos" "" in
  Sys.remove p;
  p

let content = "The quick brown fox jumps over the lazy dog, twice over."

let fx_tests =
  [
    Alcotest.test_case "passthrough shims really pass through" `Quick
      (fun () ->
        let shims = Chaos.shims (Chaos.make ~rates:(fun _ -> 0.0) ~seed:1 ()) in
        let fx = shims.Chaos.store_fx in
        let p = tmp_path () in
        fx.Fx.write_file p content;
        Alcotest.(check string) "write+read intact" content (fx.Fx.read_file p);
        let q = tmp_path () in
        fx.Fx.rename p q;
        Alcotest.(check bool) "renamed" true
          (Sys.file_exists q && not (Sys.file_exists p));
        fx.Fx.remove q);
    Alcotest.test_case "read faults: flipped bytes or typed errors, never \
                        silence" `Quick (fun () ->
        let shims = Chaos.shims (Chaos.make ~rates:(fun _ -> 1.0) ~seed:7 ()) in
        let fx = shims.Chaos.store_fx in
        let p = tmp_path () in
        Fx.real.Fx.write_file p content;
        let flips = ref 0 and errors = ref 0 in
        for _ = 1 to 40 do
          match fx.Fx.read_file p with
          | s ->
            Alcotest.(check int) "flip keeps the length" (String.length content)
              (String.length s);
            Alcotest.(check bool) "flip changes the bytes" true (s <> content);
            incr flips
          | exception Sys_error _ -> incr errors
        done;
        Alcotest.(check int) "every read faulted" 40 (!flips + !errors);
        Alcotest.(check bool) "both fault kinds appeared" true
          (!flips > 0 && !errors > 0);
        Fx.real.Fx.remove p);
    Alcotest.test_case "write faults: short, dropped or refused — a torn \
                        rename never creates the target" `Quick (fun () ->
        let shims = Chaos.shims (Chaos.make ~rates:(fun _ -> 1.0) ~seed:8 ()) in
        let fx = shims.Chaos.store_fx in
        for i = 1 to 40 do
          let p = tmp_path () in
          (match fx.Fx.write_file p content with
          | () ->
            if Sys.file_exists p then begin
              let got = Fx.real.Fx.read_file p in
              Alcotest.(check bool)
                (Printf.sprintf "short write %d is a strict prefix" i)
                true
                (String.length got < String.length content
                && got = String.sub content 0 (String.length got))
            end (* else: dropped — the write never happened *)
          | exception Sys_error _ -> ());
          if Sys.file_exists p then begin
            let dst = tmp_path () in
            (try fx.Fx.rename p dst with Sys_error _ -> ());
            Alcotest.(check bool)
              (Printf.sprintf "torn rename %d: target never appears" i)
              false (Sys.file_exists dst);
            Fx.real.Fx.remove p
          end
        done);
  ]

(* ---------------------------------------------------------------- *)
(* Store: quarantine breaker and offline fsck *)

let store_entry_path dir key =
  let hex = Key.to_hex key in
  Filename.concat dir
    (Filename.concat "objects"
       (Filename.concat (String.sub hex 0 2) (hex ^ ".rec")))

let flip_file_byte path =
  let image = Fx.real.Fx.read_file path in
  let b = Bytes.of_string image in
  let pos = Bytes.length b - 1 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  Fx.real.Fx.write_file path (Bytes.to_string b)

let tmp_store_dir () =
  let d = Filename.temp_file "moard_test_chaos_store" "" in
  Sys.remove d;
  d

let quarantine_tests =
  [
    Alcotest.test_case "repeated corruption quarantines the record and \
                        breaks the recompute storm" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let st =
          Store.open_store ~lru_entries:0 ~quarantine_after:2 ~dir ()
        in
        let key = Key.of_parts [ ("t", "quarantine") ] in
        let path = store_entry_path dir key in
        (* corruption #1: detected, healed by deletion *)
        Store.put st ~key ~kind:Record.Advf "payload";
        flip_file_byte path;
        Alcotest.(check bool) "corrupt read misses" true
          (Store.get st ~key ~kind:Record.Advf = None);
        Alcotest.(check bool) "healed by deletion" false (Sys.file_exists path);
        (* corruption #2: threshold reached, file parked not deleted *)
        Store.put st ~key ~kind:Record.Advf "payload";
        flip_file_byte path;
        Alcotest.(check bool) "second corrupt read misses" true
          (Store.get st ~key ~kind:Record.Advf = None);
        let parked =
          Filename.concat
            (Filename.concat dir "quarantine")
            (Key.to_hex key ^ ".rec")
        in
        Alcotest.(check bool) "damaged file parked for post-mortem" true
          (Sys.file_exists parked);
        let s = Store.stat st in
        Alcotest.(check int) "quarantined counted once" 1 s.Store.quarantined;
        Alcotest.(check int) "both corruptions counted" 2 s.Store.corrupt;
        (* the breaker: a quarantined key writes no further disk records *)
        Store.put st ~key ~kind:Record.Advf "payload";
        Alcotest.(check bool) "no new disk record" false (Sys.file_exists path);
        (* an unrelated key is unaffected *)
        let other = Key.of_parts [ ("t", "innocent") ] in
        Store.put st ~key:other ~kind:Record.Advf "fine";
        Alcotest.(check bool) "other keys still persist" true
          (Sys.file_exists (store_entry_path dir other)));
    Alcotest.test_case "fsck: decode-verifies every record, optionally \
                        quarantines" `Quick (fun () ->
        let dir = tmp_store_dir () in
        let st = Store.open_store ~lru_entries:0 ~dir () in
        let good = Key.of_parts [ ("t", "good") ] in
        let bad = Key.of_parts [ ("t", "bad") ] in
        Store.put st ~key:good ~kind:Record.Advf "healthy payload";
        Store.put st ~key:bad ~kind:Record.Campaign "doomed payload";
        flip_file_byte (store_entry_path dir bad);
        let r = Store.fsck st in
        Alcotest.(check int) "scanned" 2 r.Store.scanned;
        Alcotest.(check int) "valid" 1 r.Store.valid;
        Alcotest.(check int) "damaged" 1 (List.length r.Store.damaged);
        Alcotest.(check int) "nothing moved without opting in" 0 r.Store.moved;
        Alcotest.(check bool) "damaged file left in place" true
          (Sys.file_exists (store_entry_path dir bad));
        (match r.Store.damaged with
        | [ (hex, _reason) ] ->
          Alcotest.(check string) "names the key" (Key.to_hex bad) hex
        | _ -> Alcotest.fail "expected exactly one damaged entry");
        let r2 = Store.fsck ~quarantine:true st in
        Alcotest.(check int) "moved" 1 r2.Store.moved;
        Alcotest.(check bool) "moved out of objects/" false
          (Sys.file_exists (store_entry_path dir bad));
        Alcotest.(check bool) "into quarantine/" true
          (Sys.file_exists
             (Filename.concat
                (Filename.concat dir "quarantine")
                (Key.to_hex bad ^ ".rec")));
        let r3 = Store.fsck st in
        Alcotest.(check int) "clean after quarantine" 0
          (List.length r3.Store.damaged));
  ]

(* ---------------------------------------------------------------- *)
(* Protocol fuzz: arbitrary bytes must never crash or wedge recv *)

let frame s =
  let n = String.length s in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string s 0 b 4 n;
  Bytes.to_string b

(* One valid header+payload message, as raw wire bytes. *)
let valid_message =
  let header =
    Jsonx.to_string
      (Jsonx.Obj
         [ ("op", Jsonx.Str "x"); ("payload_bytes", Jsonx.Int 11) ])
  in
  frame header ^ frame "payload-xyz"

(* Feed raw bytes to one end of a socketpair, close the writing side,
   and see what recv makes of them. The writer is closed before recv
   runs, so a blocking recv would mean reading past EOF — impossible —
   which is how this also proves "no wedge". *)
let feed bytes =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      if String.length bytes > 0 then
        ignore (Unix.write_substring a bytes 0 (String.length bytes));
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Protocol.recv b)

let survives bytes =
  match feed bytes with
  | Some _ | None -> true
  | exception Protocol.Protocol_error _ -> true

let fuzz_tests =
  [
    qcheck "recv on random bytes: framed result or Protocol_error"
      QCheck2.Gen.(string_size ~gen:char (int_range 0 64))
      survives;
    qcheck "recv on truncated valid messages"
      QCheck2.Gen.(int_range 0 (String.length valid_message))
      (fun cut -> survives (String.sub valid_message 0 cut));
    qcheck "recv on well-framed garbage headers"
      QCheck2.Gen.(string_size ~gen:char (int_range 0 48))
      (fun junk -> survives (frame junk));
    qcheck ~count:50 "recv on oversized and negative length prefixes"
      QCheck2.Gen.(int_range Int32.(to_int min_int) Int32.(to_int max_int))
      (fun n ->
        let b = Bytes.create 4 in
        Bytes.set_int32_be b 0 (Int32.of_int n);
        survives (Bytes.to_string b ^ "some trailing bytes"));
  ]

(* ---------------------------------------------------------------- *)
(* The harness end to end *)

let harness_tests =
  [
    Alcotest.test_case "seeded chaos campaign: deterministic report, \
                        invariant survives" `Slow (fun () ->
        let r1 = Harness.run ~seed:5 ~rounds:1 () in
        let r2 = Harness.run ~seed:5 ~rounds:1 () in
        Alcotest.(check string) "same seed, byte-identical report"
          (Jsonx.to_string (Harness.to_json r1))
          (Jsonx.to_string (Harness.to_json r2));
        Alcotest.(check bool) "no response diverged from baseline" true
          (r1.Harness.diverged = 0);
        Alcotest.(check bool) "no client hung" true (r1.Harness.hung = 0);
        Alcotest.(check bool) "survived" true r1.Harness.survived;
        Alcotest.(check int) "every request accounted for"
          r1.Harness.requests
          (r1.Harness.identical + r1.Harness.ok_dynamic + r1.Harness.partial
          + r1.Harness.transport_failures + r1.Harness.diverged
          + List.fold_left (fun a (_, n) -> a + n) 0 r1.Harness.typed_errors));
    Alcotest.test_case "a different seed draws a different schedule" `Slow
      (fun () ->
        let r1 = Harness.run ~seed:5 ~rounds:1 () in
        let r3 = Harness.run ~seed:1234 ~rounds:1 () in
        Alcotest.(check bool) "schedules differ" true
          (r1.Harness.schedule_hash <> r3.Harness.schedule_hash);
        Alcotest.(check bool) "still survived" true r3.Harness.survived);
  ]

let suite =
  [
    ("chaos.plan", plan_tests);
    ("chaos.cancel", cancel_tests);
    ("chaos.fx", fx_tests);
    ("chaos.quarantine", quarantine_tests);
    ("chaos.protocol-fuzz", fuzz_tests);
    ("chaos.harness", harness_tests);
  ]
