(* The campaign engine's reproducibility contract (PR: campaign engine).

   Everything here checks one clause of the same guarantee: a campaign is
   a deterministic function of (seed, plan). The sampling order, the
   journal, every count and interval in the report must be bit-identical
   whether the batches run on 1 domain or N, and whether the campaign ran
   uninterrupted or was killed and resumed any number of times. *)

module Registry = Moard_kernels.Registry
module Context = Moard_inject.Context
module Splitmix = Moard_campaign.Splitmix
module Population = Moard_campaign.Population
module Plan = Moard_campaign.Plan
module Journal = Moard_campaign.Journal
module Engine = Moard_campaign.Engine
module Report = Moard_report.Campaign_report

(* One golden run per benchmark for the whole suite. *)
let ctx_cache : (string, Context.t) Hashtbl.t = Hashtbl.create 8

let ctx_of bench =
  match Hashtbl.find_opt ctx_cache bench with
  | Some c -> c
  | None ->
    let e = Registry.find bench in
    let c = Context.make (e.Registry.workload ()) in
    Hashtbl.replace ctx_cache bench c;
    c

let tmp_journal () = Filename.temp_file "moard_test_campaign" ".journal"

(* LULESH/m_elemBC: tiny population (640) with real equivalence classes,
   so both the memo path and the exhaustion path get exercised. *)
let small_plan ?(ci_width = 0.05) ?(batch = 37) () =
  let ctx = ctx_of "LULESH" in
  (ctx, Plan.make ~seed:7 ~ci_width ~batch ctx ~objects:[ "m_elemBC" ])

(* ---------------------------------------------------------------- *)
(* Splitmix *)

let splitmix_tests =
  [
    Alcotest.test_case "of_path streams are reproducible and distinct"
      `Quick (fun () ->
        let a = Splitmix.of_path ~seed:42 [ 1; 2 ]
        and a' = Splitmix.of_path ~seed:42 [ 1; 2 ]
        and b = Splitmix.of_path ~seed:42 [ 2; 1 ]
        and c = Splitmix.of_path ~seed:43 [ 1; 2 ] in
        let seq g = List.init 8 (fun _ -> Splitmix.next g) in
        let sa = seq a in
        Alcotest.(check (list int64)) "same (seed, path) => same stream" sa
          (seq a');
        Alcotest.(check bool) "path order matters" false (sa = seq b);
        Alcotest.(check bool) "seed matters" false (sa = seq c));
    Alcotest.test_case "next_int is in range" `Quick (fun () ->
        let g = Splitmix.make 9 in
        for bound = 1 to 100 do
          let x = Splitmix.next_int g bound in
          if x < 0 || x >= bound then
            Alcotest.failf "next_int %d gave %d" bound x
        done);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let a = Array.init 257 Fun.id in
        Splitmix.shuffle (Splitmix.make 1) a;
        let b = Array.copy a in
        Array.sort compare b;
        Alcotest.(check (array int)) "sorted back to identity"
          (Array.init 257 Fun.id) b;
        Alcotest.(check bool) "actually shuffled" false
          (a = Array.init 257 Fun.id));
  ]

(* ---------------------------------------------------------------- *)
(* Population and stratification *)

let population_tests =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick (fun () ->
        List.iter
          (fun (s, b) ->
            Alcotest.(check (pair int int))
              "roundtrip" (s, b)
              (Population.decode (Population.encode ~site:s ~bit:b)))
          [ (0, 0); (1, 63); (12345, 31); (0, 1) ]);
    Alcotest.test_case "bit_class splits an f64 word as documented" `Quick
      (fun () ->
        let open Moard_bits.Bitval in
        Alcotest.(check int) "63 is sign" 0 (Population.bit_class W64 63);
        Alcotest.(check int) "62 is exponent" 1 (Population.bit_class W64 62);
        Alcotest.(check int) "52 is exponent" 1 (Population.bit_class W64 52);
        Alcotest.(check int) "51 is mantissa-hi" 2
          (Population.bit_class W64 51);
        Alcotest.(check int) "26 is mantissa-hi" 2
          (Population.bit_class W64 26);
        Alcotest.(check int) "25 is mantissa-lo" 3
          (Population.bit_class W64 25);
        Alcotest.(check int) "0 is mantissa-lo" 3 (Population.bit_class W64 0));
    Alcotest.test_case "strata partition the population" `Quick (fun () ->
        let ctx = ctx_of "LULESH" in
        let p =
          Population.of_tape
            ~segment:(Context.segment ctx)
            (Context.tape ctx)
            (Context.object_of ctx "m_elemBC")
            ~object_name:"m_elemBC"
        in
        let sum =
          Array.fold_left (fun a m -> a + Array.length m) 0 p.Population.members
        in
        Alcotest.(check int) "members cover total" p.Population.total sum;
        let seen = Hashtbl.create 97 in
        Array.iter
          (Array.iter (fun e ->
               if Hashtbl.mem seen e then Alcotest.fail "duplicate member";
               Hashtbl.add seen e ()))
          p.Population.members);
  ]

(* ---------------------------------------------------------------- *)
(* Allocation properties *)

let allocation_props =
  let open QCheck in
  let remaining_gen =
    make
      ~print:Print.(pair int (list int))
      Gen.(
        pair (int_range 0 500)
          (list_size (int_range 1 12) (int_range 0 200)))
  in
  [
    Test.make ~count:300
      ~name:"allocate sums to min(budget, total) and respects populations"
      remaining_gen
      (fun (budget, remaining) ->
        let remaining = Array.of_list remaining in
        let total = Array.fold_left ( + ) 0 remaining in
        let a = Plan.allocate ~budget remaining in
        Array.length a = Array.length remaining
        && Array.fold_left ( + ) 0 a = min budget total
        && Array.for_all2 (fun x r -> x >= 0 && x <= r) a remaining);
    Test.make ~count:100 ~name:"allocate is deterministic" remaining_gen
      (fun (budget, remaining) ->
        let remaining = Array.of_list remaining in
        Plan.allocate ~budget remaining = Plan.allocate ~budget remaining);
  ]

(* ---------------------------------------------------------------- *)
(* Plan determinism *)

let plan_tests =
  [
    Alcotest.test_case "plan hash is stable and seed-sensitive" `Quick
      (fun () ->
        let ctx = ctx_of "LULESH" in
        let p seed = Plan.make ~seed ctx ~objects:[ "m_elemBC" ] in
        Alcotest.(check string) "same seed, same hash"
          (Plan.hash (p 7)) (Plan.hash (p 7));
        Alcotest.(check bool) "different seed, different hash" false
          (Plan.hash (p 7) = Plan.hash (p 8)));
    Alcotest.test_case "sampling order is a permutation of each stratum"
      `Quick (fun () ->
        let _, plan = small_plan () in
        Array.iter
          (fun (o : Plan.objective) ->
            Array.iter
              (fun (s : Plan.stratum) ->
                let sorted = Array.copy s.Plan.order in
                Array.sort compare sorted;
                Alcotest.(check (array int))
                  ("order of " ^ s.Plan.label)
                  (Array.init s.Plan.population Fun.id)
                  sorted)
              o.Plan.strata)
          plan.Plan.objectives);
    Alcotest.test_case "plan rejects unknown objects and bad confidence"
      `Quick (fun () ->
        let ctx = ctx_of "LULESH" in
        (match Plan.make ctx ~objects:[ "nope" ] with
        | (_ : Plan.t) -> Alcotest.fail "unknown object accepted"
        | exception (Invalid_argument _ | Not_found | Failure _) -> ());
        (try
           ignore (Plan.make ~confidence:0.42 ctx ~objects:[ "m_elemBC" ]);
           Alcotest.fail "confidence 0.42 accepted"
         with Invalid_argument _ -> ()));
  ]

(* ---------------------------------------------------------------- *)
(* Engine determinism across domain counts *)

let stable r = Report.stable_json r

let engine_tests =
  [
    Alcotest.test_case "domains=1 and domains=3 are bit-identical" `Slow
      (fun () ->
        let ctx, plan = small_plan () in
        let r1 = Engine.run ~domains:1 ctx plan in
        let r3 = Engine.run ~domains:3 ctx plan in
        Alcotest.(check string) "stable reports equal" (stable r1) (stable r3);
        (* requested domains are capped at the machine's recommended count
           (oversubscribing a CPU-bound pool only adds overhead), so the
           run uses min(3, recommended) domains *)
        Alcotest.(check int) "domain count capped at recommended"
          (min 3 (Domain.recommended_domain_count ()))
          (Array.length r3.Engine.perf.Engine.per_domain_runs));
    Alcotest.test_case "cache hits count as resolved samples" `Quick
      (fun () ->
        (* m_elemBC has large equivalence classes (exhaustive: 96 runs for
           640 injections), so a full sweep must show hits. *)
        let ctx = ctx_of "LULESH" in
        let plan =
          Plan.make ~seed:7 ~ci_width:0.001 ctx ~objects:[ "m_elemBC" ]
        in
        let r = Engine.run ctx plan in
        let o = r.Engine.objects.(0) in
        Alcotest.(check int) "samples = runs + hits" o.Engine.samples
          (o.Engine.runs + o.Engine.cache_hits);
        Alcotest.(check bool) "equivalence classes were deduplicated" true
          (o.Engine.cache_hits > 0);
        Alcotest.(check bool) "exhausted population" true
          (o.Engine.stopped = Engine.Exhausted);
        Alcotest.(check int) "sampled whole population" o.Engine.population
          o.Engine.samples);
    Alcotest.test_case "stopping: ci target needs fewer samples than \
                        exhaustion" `Quick (fun () ->
        let ctx = ctx_of "PF" in
        let plan = Plan.make ~seed:3 ~ci_width:0.05 ctx ~objects:[ "xe" ] in
        let r = Engine.run ctx plan in
        let o = r.Engine.objects.(0) in
        Alcotest.(check bool) "stopped on ci-target" true
          (o.Engine.stopped = Engine.Ci_target);
        Alcotest.(check bool) "strictly fewer samples than population" true
          (o.Engine.samples < o.Engine.population);
        Alcotest.(check bool) "interval reached the target" true
          (o.Engine.halfwidth <= 0.05));
  ]

(* ---------------------------------------------------------------- *)
(* Journal: crash, resume, rejection *)

let run_to_string path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let journal_tests =
  [
    Alcotest.test_case "kill mid-run + resume = uninterrupted report" `Slow
      (fun () ->
        let ctx, plan = small_plan () in
        let straight = Engine.run ctx plan in
        let path = tmp_journal () in
        (* Bounded-step harness: stop after one batch, exactly as a kill
           between batches would leave the journal. *)
        let partial = Engine.run ~journal:path ~max_batches:1 ctx plan in
        Alcotest.(check bool) "harness really interrupted" true
          (partial.Engine.objects.(0).Engine.stopped = Engine.Interrupted);
        let resumed = Engine.resume ~domains:2 ~journal:path ctx plan in
        Alcotest.(check string) "resume completes to the same bytes"
          (stable straight) (stable resumed);
        (* Resume of a finished journal replays to the same state too. *)
        let again = Engine.resume ~journal:path ctx plan in
        Alcotest.(check string) "idempotent" (stable straight) (stable again);
        Sys.remove path);
    Alcotest.test_case "torn tail (kill mid-batch) is dropped on resume"
      `Slow (fun () ->
        let ctx, plan = small_plan () in
        let straight = Engine.run ctx plan in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ~max_batches:2 ctx plan);
        (* Simulate a crash mid-write: append uncommitted sample lines and
           a final torn (unterminated) line. *)
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "S 0 0 9999 2\nS 0 1 9999 0\nC 0";
        close_out oc;
        let resumed = Engine.resume ~journal:path ctx plan in
        Alcotest.(check string) "uncommitted tail ignored" (stable straight)
          (stable resumed);
        Sys.remove path);
    Alcotest.test_case "journal bound to plan hash and schema version"
      `Quick (fun () ->
        let ctx, plan = small_plan () in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ~max_batches:1 ctx plan);
        let other = Plan.make ~seed:8 ctx ~objects:[ "m_elemBC" ] in
        (try
           ignore (Engine.resume ~journal:path ctx other);
           Alcotest.fail "foreign plan accepted"
         with Journal.Rejected _ -> ());
        (* Corrupt the version line (first line of the file). *)
        let contents = run_to_string path in
        let nl = String.index contents '\n' in
        let oc = open_out path in
        output_string oc "moard-campaign-journal 99";
        output_string oc
          (String.sub contents nl (String.length contents - nl));
        close_out oc;
        (try
           ignore (Engine.resume ~journal:path ctx plan);
           Alcotest.fail "wrong schema version accepted"
         with Journal.Rejected _ -> ());
        Sys.remove path);
    Alcotest.test_case "records contradicting the plan are rejected" `Quick
      (fun () ->
        let ctx, plan = small_plan () in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ~max_batches:1 ctx plan);
        (* A committed batch whose sample index skips ahead cannot come
           from this plan's deterministic schedule — even with a valid
           batch checksum, replay must reject it. *)
        let body = "S 0 0 9999 2\n" in
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc
          (body ^ Printf.sprintf "C 0 1 %s\n" (Journal.checksum body));
        close_out oc;
        (try
           ignore (Engine.resume ~journal:path ctx plan);
           Alcotest.fail "out-of-order record accepted"
         with Journal.Rejected _ -> ());
        Sys.remove path);
    Alcotest.test_case "report-only replay (max_batches 0) injects nothing"
      `Quick (fun () ->
        let ctx, plan = small_plan () in
        let path = tmp_journal () in
        let partial = Engine.run ~journal:path ~max_batches:1 ctx plan in
        let replayed = Engine.resume ~max_batches:0 ~journal:path ctx plan in
        Alcotest.(check string) "replay matches the interrupted state"
          (stable partial) (stable replayed);
        Alcotest.(check int) "no new executions during replay" 0
          (Array.fold_left ( + ) 0
             replayed.Engine.perf.Engine.per_domain_runs);
        Sys.remove path);
    Alcotest.test_case "fsck verifies a healthy journal" `Quick (fun () ->
        let ctx, plan = small_plan () in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ctx plan);
        let r = Journal.fsck ~path () in
        Alcotest.(check bool) "header ok" true r.Journal.header_ok;
        Alcotest.(check (option string))
          "bound to the plan" (Some (Plan.hash plan)) r.Journal.plan_hash;
        Alcotest.(check bool) "has batches" true (r.Journal.batches > 0);
        Alcotest.(check bool) "has records" true
          (r.Journal.records >= r.Journal.batches);
        Alcotest.(check bool) "no torn tail" false r.Journal.torn_tail;
        Alcotest.(check (option int)) "no bad line" None r.Journal.bad_line;
        Sys.remove path);
    Alcotest.test_case "a bit flipped in a committed batch is detected, \
                        and resume recomputes to the same bytes" `Slow
      (fun () ->
        let ctx, plan = small_plan () in
        let straight = Engine.run ctx plan in
        let path = tmp_journal () in
        ignore (Engine.run ~journal:path ctx plan);
        let before = Journal.fsck ~path () in
        (* flip one digit inside the first committed sample line: without
           the per-batch checksum this would still parse as a valid (but
           different) sample and silently poison the replay *)
        let contents = run_to_string path in
        let rec find_s i =
          match String.index_from contents i '\n' with
          | exception Not_found -> Alcotest.fail "no sample line"
          | nl when nl + 1 < String.length contents && contents.[nl + 1] = 'S'
            ->
            nl + 3
          | nl -> find_s (nl + 1)
        in
        let pos = find_s 0 in
        let b = Bytes.of_string contents in
        Bytes.set b pos (if Bytes.get b pos = '0' then '1' else '0');
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        let after = Journal.fsck ~path () in
        Alcotest.(check bool) "fsck pinpoints the damage" true
          (after.Journal.bad_line <> None);
        Alcotest.(check bool) "only the prefix is trusted" true
          (after.Journal.batches < before.Journal.batches);
        (* resume replays the trusted prefix and recomputes the rest:
           detection costs work, never correctness *)
        let resumed = Engine.resume ~journal:path ctx plan in
        Alcotest.(check string) "same bytes as an undamaged run"
          (stable straight) (stable resumed);
        Sys.remove path);
  ]

(* ---------------------------------------------------------------- *)
(* Golden snapshot: the exact bytes the CI smoke job diffs.
   Regenerate with:
     dune exec bin/moard_cli.exe -- campaign run LULESH -o m_elemBC \
       --seed 42 --ci-width 0.02 --stable --out test/golden_campaign.expected *)

let golden_tests =
  [
    Alcotest.test_case "stable report matches the checked-in snapshot"
      `Quick (fun () ->
        let path =
          List.find Sys.file_exists
            [
              "golden_campaign.expected"; "test/golden_campaign.expected";
              Filename.concat
                (Filename.dirname Sys.executable_name)
                "golden_campaign.expected";
            ]
        in
        let expected = run_to_string path in
        let ctx = ctx_of "LULESH" in
        let plan =
          Plan.make ~seed:42 ~ci_width:0.02 ctx ~objects:[ "m_elemBC" ]
        in
        let r = Engine.run ~domains:2 ctx plan in
        Alcotest.(check string) "bytes" expected (stable r));
  ]

let suite =
  [
    ("campaign.splitmix", splitmix_tests);
    ("campaign.population", population_tests);
    ( "campaign.allocation",
      List.map QCheck_alcotest.to_alcotest allocation_props );
    ("campaign.plan", plan_tests);
    ("campaign.engine", engine_tests);
    ("campaign.journal", journal_tests);
    ("campaign.golden", golden_tests);
  ]
