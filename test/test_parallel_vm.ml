(* The multi-hart VM subsystem and the SPMD kernel ports.

   Two pillars. Determinism: the round-robin schedule is a pure function
   of (program, args, harts), so two traces of the same configuration are
   identical event for event, including the tape's hart lane — which is
   what makes multi-hart golden runs, checkpoints and campaigns
   reproducible. Differential equality: at one hart an SPMD port's
   consumption sites over the target objects replicate the serial
   kernel's exactly, so the whole aDVF report — totals, level and kind
   decompositions, stage counters — is bit-identical to the serial
   analysis. *)

module Ast = Moard_lang.Ast
module Machine = Moard_vm.Machine
module Tape = Moard_trace.Tape
module Event = Moard_trace.Event
module Sharing = Moard_trace.Sharing
module Consume = Moard_trace.Consume
module Context = Moard_inject.Context
module Advf = Moard_core.Advf
module Model = Moard_core.Model
module Hart_split = Moard_core.Hart_split
module Pattern = Moard_bits.Pattern

let qtest ?(count = 4) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let load globals funs =
  Machine.load (Moard_lang.Compile.program { Ast.globals; funs })

let check_finished (r : Machine.run) =
  match r.Machine.outcome with
  | Machine.Finished _ -> ()
  | Machine.Trapped t -> Alcotest.fail (Moard_vm.Trap.to_string t)

let out_i64s m (r : Machine.run) k =
  Array.to_list (Array.sub (Machine.read_i64s m r.Machine.mem "out") 0 k)

(* ------------------------------------------------------------------ *)
(* Hart intrinsics and barrier semantics. *)

(* out[me] <- me * 10 + hart_count *)
let lane_identity_m =
  let open Ast.Dsl in
  load
    [ garr_i64 "out" 8 ]
    [
      fn "main"
        [
          int_ "me" hart_id;
          ("out".%(v "me") <- (v "me" * i 10) + hart_count);
          ret_void;
        ];
    ]

(* each hart contributes me+1, then after the barrier folds all of a *)
let barrier_sum_m =
  let open Ast.Dsl in
  load
    [ garr_i64 "a" 8; garr_i64 "out" 8 ]
    [
      fn "main"
        [
          int_ "me" hart_id;
          int_ "nh" hart_count;
          ("a".%(v "me") <- v "me" + i 1);
          barrier_;
          int_ "s" (i 0);
          for_ "h" (i 0) (v "nh") [ "s" <-- v "s" + "a".%(v "h") ];
          ("out".%(v "me") <- v "s");
          ret_void;
        ];
    ]

(* hart 0 returns without reaching the barrier; the rest must still be
   released (live-hart quorum), not deadlock *)
let early_exit_m =
  let open Ast.Dsl in
  load
    [ garr_i64 "out" 8 ]
    [
      fn "main"
        [
          int_ "me" hart_id;
          if_ (v "me" == i 0) [ ("out".%(i 0) <- i 7); ret_void ] [];
          barrier_;
          ("out".%(v "me") <- i 1);
          ret_void;
        ];
    ]

let intrinsics_tests =
  [
    Alcotest.test_case "hart_id and hart_count are per-hart runtime values"
      `Quick (fun () ->
        let r = Machine.run ~harts:3 lane_identity_m ~entry:"main" in
        check_finished r;
        Alcotest.(check (list int64))
          "out" [ 3L; 13L; 23L; 0L ]
          (out_i64s lane_identity_m r 4));
    Alcotest.test_case "barrier publishes writes to every hart" `Quick
      (fun () ->
        let r = Machine.run ~harts:4 barrier_sum_m ~entry:"main" in
        check_finished r;
        (* every hart folded all four contributions: 1+2+3+4 *)
        Alcotest.(check (list int64))
          "out" [ 10L; 10L; 10L; 10L ]
          (out_i64s barrier_sum_m r 4));
    Alcotest.test_case "finished harts leave the barrier quorum" `Quick
      (fun () ->
        let r =
          Machine.run ~step_limit:10_000 ~harts:3 early_exit_m ~entry:"main"
        in
        check_finished r;
        Alcotest.(check (list int64))
          "out" [ 7L; 1L; 1L ] (out_i64s early_exit_m r 3));
    Alcotest.test_case "hart intrinsics take no arguments" `Quick (fun () ->
        let bad =
          let open Ast.Dsl in
          {
            Ast.globals = [];
            funs =
              [ fn "main" [ int_ "x" (call "hart_id" [ i 3 ]); ret_void ] ];
          }
        in
        match Machine.load (Moard_lang.Compile.program bad) with
        | exception _ -> ()
        | m -> (
          match Machine.run m ~entry:"main" with
          | { Machine.outcome = Machine.Trapped _; _ } -> ()
          | _ -> Alcotest.fail "arity violation not rejected"));
    Alcotest.test_case "hart count out of range is rejected" `Quick
      (fun () ->
        let check n =
          match Machine.run ~harts:n lane_identity_m ~entry:"main" with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "harts=%d accepted" n
        in
        check 0;
        check (Machine.max_harts + 1));
    Alcotest.test_case "serial tape carries hart 0 everywhere" `Quick
      (fun () ->
        let ctx = Context.make (Moard_kernels.Abft_mm.workload ~n:4 ()) in
        let tape = Context.tape ctx in
        for t = 0 to Tape.length tape - 1 do
          Alcotest.(check int) "hart" 0 (Tape.hart_at tape t)
        done);
    Alcotest.test_case "multi-hart tape interleaves every hart" `Quick
      (fun () ->
        let ctx =
          Context.make
            (Moard_kernels.Abft_mm.parallel_workload ~n:4 ~harts:3 ())
        in
        let tape = Context.tape ctx in
        let seen = Array.make 3 false in
        for t = 0 to Tape.length tape - 1 do
          seen.(Tape.hart_at tape t) <- true
        done;
        Alcotest.(check (list bool))
          "all harts executed" [ true; true; true ] (Array.to_list seen));
  ]

(* ------------------------------------------------------------------ *)
(* Schedule determinism: same (program, harts) => identical tape,
   including the hart lane. *)

let tape_fingerprint tape =
  let b = Buffer.create 4096 in
  for t = 0 to Tape.length tape - 1 do
    Buffer.add_string b
      (Format.asprintf "%d|%a@." (Tape.hart_at tape t) Event.pp
         (Tape.get tape t))
  done;
  Buffer.contents b

let determinism_tests =
  [
    qtest ~count:4 "same seed and harts => identical tape (MM)"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 2 5))
      (fun (seed, harts) ->
        let trace () =
          let w =
            Moard_kernels.Abft_mm.parallel_workload ~n:4 ~seed ~harts ()
          in
          let m = Machine.load w.Moard_inject.Workload.program in
          let _, tape = Machine.trace ~harts m ~entry:"main" in
          tape_fingerprint tape
        in
        String.equal (trace ()) (trace ()));
    Alcotest.test_case "checkpoint resume is exact on a multi-hart run"
      `Quick (fun () ->
        let ctx =
          Context.make
            (Moard_kernels.Abft_mm.parallel_workload ~n:4 ~harts:3 ())
        in
        let obj = Context.object_of ctx "C" in
        let sites =
          Consume.of_tape ~segment:(Context.segment ctx) (Context.tape ctx)
            obj
        in
        (* a handful of sites across the run, compared fresh vs resumed *)
        List.iteri
          (fun i site ->
            if i mod 37 = 0 then
              let fresh =
                Context.inject_at ~use_cache:false ~resume:false ctx site
                  (Pattern.Single 3)
              in
              let resumed =
                Context.inject_at ~use_cache:false ~resume:true ctx site
                  (Pattern.Single 3)
              in
              if fresh <> resumed then
                Alcotest.failf "site %d: fresh %s <> resumed %s" i
                  (Moard_inject.Outcome.to_string fresh)
                  (Moard_inject.Outcome.to_string resumed))
          sites);
  ]

(* ------------------------------------------------------------------ *)
(* Differential: at one hart the SPMD port's aDVF report is
   bit-identical to the serial kernel's, object by object. *)

let report_key (r : Advf.report) =
  ( r.Advf.involvements,
    Int64.bits_of_float r.Advf.advf,
    Int64.bits_of_float r.Advf.masking_events,
    Array.to_list (Array.map Int64.bits_of_float r.Advf.by_level),
    Array.to_list (Array.map Int64.bits_of_float r.Advf.by_kind),
    (r.Advf.op_resolved, r.Advf.prop_resolved, r.Advf.fi_resolved) )

let differential serial parallel objects =
  let cs = Context.make serial and cp = Context.make parallel in
  List.for_all
    (fun obj ->
      let rs = Model.analyze cs ~object_name:obj in
      let rp = Model.analyze cp ~object_name:obj in
      report_key rs = report_key rp)
    objects

let differential_tests =
  [
    qtest ~count:3 "MM: parallel port at 1 hart == serial, bit for bit"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        differential
          (Moard_kernels.Abft_mm.workload ~n:4 ~seed ())
          (Moard_kernels.Abft_mm.parallel_workload ~n:4 ~seed ~harts:1 ())
          [ "C" ]);
    qtest ~count:3 "CG: parallel port at 1 hart == serial, bit for bit"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        differential
          (Moard_kernels.Cg.workload ~n:8 ~iters:2 ~seed ())
          (Moard_kernels.Cg.parallel_workload ~n:8 ~iters:2 ~seed ~harts:1 ())
          [ "r"; "colidx" ]);
    Alcotest.test_case "LULESH: parallel port at 1 hart == serial" `Slow
      (fun () ->
        Alcotest.(check bool) "differential" true
          (differential
             (Moard_kernels.Lulesh.workload ~nelem:8 ())
             (Moard_kernels.Lulesh.parallel_workload ~nelem:8 ~harts:1 ())
             [ "m_elemBC"; "m_delv_zeta" ]));
    Alcotest.test_case "multi-hart outputs track serial outputs" `Quick
      (fun () ->
        (* At one hart the port's outputs are bit-identical to serial.
           At N >= 2 the per-hart partial sums reassociate the floating
           point, so outputs are only required to be deterministic (same
           bits on every run of one hart count) and numerically close. *)
        let golden w =
          Array.to_list (Context.golden_floats (Context.make w))
        in
        let serial = golden (Moard_kernels.Cg.workload ~n:8 ~iters:2 ()) in
        let par harts =
          golden (Moard_kernels.Cg.parallel_workload ~n:8 ~iters:2 ~harts ())
        in
        List.iter2
          (fun a b ->
            Alcotest.(check int64) "harts=1 bit-identical"
              (Int64.bits_of_float a) (Int64.bits_of_float b))
          serial (par 1);
        List.iter
          (fun harts ->
            let p = par harts in
            List.iter2
              (fun a b ->
                Alcotest.(check int64)
                  (Printf.sprintf "harts=%d deterministic" harts)
                  (Int64.bits_of_float a) (Int64.bits_of_float b))
              p
              (par harts);
            List.iter2
              (fun a b ->
                Alcotest.(check bool)
                  (Printf.sprintf "harts=%d close" harts)
                  true
                  (Float.abs (a -. b)
                  <= 1e-9 *. Float.max 1.0 (Float.abs a)))
              serial p)
          [ 2; 3; 5 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Shared vs hart-private classification. *)

let sharing_tests =
  [
    Alcotest.test_case "serial tapes classify everything private" `Quick
      (fun () ->
        let ctx = Context.make (Moard_kernels.Lulesh.workload ~nelem:8 ()) in
        let s = Sharing.of_tape (Context.tape ctx) in
        Alcotest.(check int) "harts" 1 (Sharing.harts s);
        Alcotest.(check int) "shared" 0 (Sharing.shared_cells s));
    Alcotest.test_case "stripe-boundary reads are shared state" `Quick
      (fun () ->
        let ctx =
          Context.make
            (Moard_kernels.Lulesh.parallel_workload ~nelem:8 ~harts:3 ())
        in
        let s = Sharing.of_tape (Context.tape ctx) in
        Alcotest.(check int) "harts" 3 (Sharing.harts s);
        Alcotest.(check bool) "some cells shared" true
          (Sharing.shared_cells s > 0);
        let split = Hart_split.analyze ctx ~object_name:"m_delv_zeta" in
        Alcotest.(check bool) "some shared sites" true
          (split.Hart_split.shared_sites > 0);
        Alcotest.(check bool) "some private sites" true
          (split.Hart_split.shared_sites < split.Hart_split.sites);
        (* the split partitions the whole-object analysis exactly *)
        let whole = Model.analyze ctx ~object_name:"m_delv_zeta" in
        Alcotest.(check int64) "merged advf"
          (Int64.bits_of_float whole.Advf.advf)
          (Int64.bits_of_float split.Hart_split.total.Advf.advf));
  ]

let suite =
  [
    ("parallel_vm.intrinsics", intrinsics_tests);
    ("parallel_vm.determinism", determinism_tests);
    ("parallel_vm.differential", differential_tests);
    ("parallel_vm.sharing", sharing_tests);
  ]
